"""Metrics primitives and the registry.

Design constraints, in order:

* **Deterministic** — nothing here reads the wall clock.  Histogram
  buckets are denominated in whatever the caller observes, which in
  this codebase is always *logical steps* or entry/byte counts.
* **Cheap when hot** — callers on the per-item path pre-bind label
  children once (``metric.labels(te="count")`` returns a small mutable
  cell) so a hot-path increment is one attribute add, no dict lookup.
* **Injectable** — the engine takes any registry-shaped object via
  ``RuntimeConfig(metrics=...)``.  :data:`NULL_REGISTRY` is the no-op
  implementation used as the benchmark baseline ("no registry") and as
  the default for layers constructed stand-alone in unit tests.

A process-wide default registry (:func:`default_registry`) exists for
scripts that want one shared sink, but the runtime deliberately
creates a *fresh* registry per `Runtime` unless one is injected, so
tests never see each other's counts.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import SDGError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricError",
    "NullRegistry",
    "NULL_REGISTRY",
    "default_registry",
    "DEFAULT_STEP_BUCKETS",
]


class MetricError(SDGError):
    """Raised on metric misuse: kind clash, negative counter step."""


#: Default histogram buckets, in logical steps.  Chosen to resolve both
#: sub-checkpoint-interval latencies and long replay spans.
DEFAULT_STEP_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _CounterChild:
    """Monotone accumulator bound to one label set."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a Gauge")
        self.value += amount


class _GaugeChild:
    """Up/down level bound to one label set."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    """Fixed-bucket distribution bound to one label set."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (upper bound of the landing bucket)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for i, n in enumerate(self.counts):
            running += n
            if running >= target:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")


class _Metric:
    """Shared name/help/children plumbing for the three metric kinds."""

    kind = "untyped"
    _child_cls: type = _CounterChild

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._children: dict[tuple[tuple[str, str], ...], object] = {}

    def _new_child(self):
        return self._child_cls()

    def labels(self, **labels: str):
        """Return (creating if needed) the child cell for ``labels``.

        Pre-bind the result outside any hot loop; the returned child's
        methods are plain attribute arithmetic.
        """
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    def value(self, **labels: str) -> float:
        """Current value for a label set, ``0.0`` if never touched."""
        child = self._children.get(_label_key(labels))
        return 0.0 if child is None else child.value

    def samples(self) -> list[tuple[dict[str, str], object]]:
        return [(dict(key), child) for key, child in sorted(self._children.items())]


class Counter(_Metric):
    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)


class Gauge(_Metric):
    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float, **labels: str) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).dec(amount)


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: tuple[float, ...] | None = None) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets)) if buckets else DEFAULT_STEP_BUCKETS

    def _new_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labels: str) -> None:
        self.labels(**labels).observe(value)

    def value(self, **labels: str) -> float:
        """For histograms, ``value`` reads the observation *count*."""
        child = self._children.get(_label_key(labels))
        return 0.0 if child is None else float(child.count)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create home for metrics, with Prometheus text export."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get(self, name: str, kind: str, **kwargs) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = _KINDS[kind](name, **kwargs)
        elif metric.kind != kind:
            raise MetricError(
                f"metric {name!r} already registered as {metric.kind}, not {kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, "counter", help=help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, "gauge", help=help)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        return self._get(name, "histogram", help=help, buckets=buckets)  # type: ignore[return-value]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def collect(self) -> list[_Metric]:
        return [self._metrics[name] for name in self.names()]

    def value(self, name: str, **labels: str) -> float:
        """Current value of one metric's label set, 0.0 if absent.

        With no labels this reads the unlabelled child — convenient
        for the engine/transport counters that pre-bind ``.labels()``.
        """
        metric = self._metrics.get(name)
        return 0.0 if metric is None else metric.value(**labels)

    def total(self, name: str) -> float:
        """Sum of every child of one metric (0.0 when unregistered)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        return sum(getattr(child, "value", 0.0)
                   for _labels, child in metric.samples())

    # -- sharding (multiprocess substrate) -----------------------------

    def reset(self) -> None:
        """Zero every child cell in place, keeping bound children valid.

        Forked worker processes inherit the coordinator's registry —
        including deploy-time values — so they reset it at startup:
        their shard then holds only work performed *in* the worker, and
        the barrier merge never double-counts the coordinator's
        deploy-time series. Pre-bound label children stay usable (the
        cells are mutated, not replaced).
        """
        for metric in self._metrics.values():
            for child in metric._children.values():
                if metric.kind == "histogram":
                    child.counts = [0] * len(child.counts)
                    child.sum = 0.0
                    child.count = 0
                else:
                    child.value = 0.0

    def snapshot(self) -> dict:
        """The registry's full state as plain picklable data.

        Worker processes ship these shards to the coordinator at
        barrier points; :meth:`merge_snapshot` folds them back into one
        registry so observability output is substrate-agnostic.
        """
        out: dict = {}
        for name, metric in self._metrics.items():
            children: dict = {}
            for key, child in metric._children.items():
                if metric.kind == "histogram":
                    children[key] = (list(child.counts), child.sum,
                                     child.count)
                else:
                    children[key] = child.value
            entry = {"kind": metric.kind, "help": metric.help,
                     "children": children}
            if metric.kind == "histogram":
                entry["buckets"] = metric.buckets
            out[name] = entry
        return out

    def merge_snapshot(self, snap: dict) -> None:
        """Fold one :meth:`snapshot` shard into this registry.

        Counters and gauges add (a gauge like inbox depth is a per-
        worker level; the merged value is the fleet total); histograms
        merge bucket-by-bucket and require identical bounds.
        """
        for name, entry in snap.items():
            kind = entry["kind"]
            if kind == "histogram":
                metric = self.histogram(name, entry["help"],
                                        buckets=entry.get("buckets"))
            elif kind == "gauge":
                metric = self.gauge(name, entry["help"])
            else:
                metric = self.counter(name, entry["help"])
            if metric.kind != kind:
                raise MetricError(
                    f"cannot merge shard metric {name!r} of kind "
                    f"{kind} into existing {metric.kind}"
                )
            for key, state in entry["children"].items():
                child = metric.labels(**dict(key))
                if kind == "histogram":
                    counts, total, n = state
                    if len(counts) != len(child.counts):
                        raise MetricError(
                            f"histogram {name!r} shard has "
                            f"{len(counts)} buckets, registry has "
                            f"{len(child.counts)}"
                        )
                    for i, c in enumerate(counts):
                        child.counts[i] += c
                    child.sum += total
                    child.count += n
                else:
                    child.value += state

    def merged_with(self, shards: "list[dict]") -> "MetricsRegistry":
        """A fresh registry = this registry's snapshot + all shards.

        Non-destructive: repeated calls with the same cumulative shards
        never double-count, because the merge always starts from a new
        registry.
        """
        merged = MetricsRegistry()
        merged.merge_snapshot(self.snapshot())
        for shard in shards:
            merged.merge_snapshot(shard)
        return merged

    def to_dict(self) -> dict[str, dict[str, float]]:
        """``{metric: {"label=value,...": scalar}}`` — JSON-friendly dump.

        Histograms surface their observation count and sum.
        """
        out: dict[str, dict[str, float]] = {}
        for metric in self.collect():
            series: dict[str, float] = {}
            for labels, child in metric.samples():
                key = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                if metric.kind == "histogram":
                    series[f"{key}#count" if key else "#count"] = float(child.count)
                    series[f"{key}#sum" if key else "#sum"] = child.sum
                else:
                    series[key] = child.value
            out[metric.name] = series
        return out

    def to_prometheus_text(self) -> str:
        """Render the registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for metric in self.collect():
            if metric.help:
                lines.append(
                    f"# HELP {metric.name} {_escape_help(metric.help)}"
                )
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for labels, child in metric.samples():
                if metric.kind == "histogram":
                    cumulative = 0
                    for bound, n in zip(
                        list(metric.buckets) + [float("inf")], child.counts
                    ):
                        cumulative += n
                        le = "+Inf" if bound == float("inf") else _fmt(bound)
                        lines.append(
                            f"{metric.name}_bucket{_label_str(labels, le=le)} {cumulative}"
                        )
                    lines.append(f"{metric.name}_sum{_label_str(labels)} {_fmt(child.sum)}")
                    lines.append(f"{metric.name}_count{_label_str(labels)} {child.count}")
                else:
                    lines.append(f"{metric.name}{_label_str(labels)} {_fmt(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote and newline must be escaped, in that order
    (backslash first, or the other escapes would be double-escaped)."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (quotes are legal)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(labels: dict[str, str], **extra: str) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"'
                     for k, v in sorted(merged.items()))
    return "{" + inner + "}"


class _NullMetric:
    """A metric that swallows everything; ``labels()`` returns itself."""

    __slots__ = ()
    value_ = 0.0
    count = 0
    sum = 0.0

    def labels(self, **labels: str) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def set(self, value: float, **labels: str) -> None:
        pass

    def observe(self, value: float, **labels: str) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0

    def samples(self) -> list:
        return []


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """Registry-shaped no-op: the "no metrics at all" baseline.

    Used by the overhead benchmark as the reference configuration and
    as the default sink for layers constructed stand-alone.
    """

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] | None = None
    ) -> _NullMetric:
        return _NULL_METRIC

    def names(self) -> list[str]:
        return []

    def collect(self) -> list:
        return []

    def value(self, name: str, **labels: str) -> float:
        return 0.0

    def total(self, name: str) -> float:
        return 0.0

    def to_dict(self) -> dict:
        return {}

    def to_prometheus_text(self) -> str:
        return ""

    def snapshot(self) -> dict:
        return {}

    def merge_snapshot(self, snap: dict) -> None:
        pass

    def merged_with(self, shards: list) -> "NullRegistry":
        return self


NULL_REGISTRY = NullRegistry()

_default: MetricsRegistry | None = None


def default_registry() -> MetricsRegistry:
    """Process-wide shared registry for scripts that want one sink.

    The runtime does *not* use this implicitly — pass it explicitly:
    ``RuntimeConfig(metrics=default_registry())``.
    """
    global _default
    if _default is None:
        _default = MetricsRegistry()
    return _default

"""A distributed, partitioned key/value store (§6.1).

The paper uses this synthetic application — "an algorithm with pure
mutable state" — to measure throughput/latency as the state size grows
(Fig. 6, Fig. 7) and to drive the failure-recovery experiments
(Fig. 11-13). Every operation is a fine-grained update or read of a
hash-partitioned dictionary SE.
"""

from __future__ import annotations

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class KeyValueStore(SDGProgram):
    """A hash-partitioned KV store with put/get/delete/increment."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def put(self, key, value):
        """Insert or overwrite one key."""
        self.table.put(key, value)

    @entry
    def get(self, key):
        """Read one key (None when absent)."""
        value = self.table.get(key)
        return (key, value)

    @entry
    def remove(self, key):
        """Delete one key if present."""
        if self.table.contains(key):
            self.table.delete(key)

    @entry
    def bump(self, key, delta):
        """Atomically add ``delta`` to a counter; returns the new value."""
        value = self.table.increment(key, delta)
        return (key, value)

"""Tests for per-envelope causal tracing through the live runtime."""

from repro.apps.wordcount import build_wordcount_sdg
from repro.runtime import Runtime, RuntimeConfig

from tests.helpers import build_kv_sdg


def deploy_wordcount(trace=True):
    runtime = Runtime(
        build_wordcount_sdg(window_size=10),
        RuntimeConfig(se_instances={"counts": 2}, trace=trace),
    )
    runtime.deploy()
    return runtime


class TestTracing:
    def test_tracing_off_by_default(self):
        runtime = Runtime(build_kv_sdg())
        runtime.deploy()
        runtime.inject("serve", ("put", 1, 1))
        runtime.run_until_idle()
        assert runtime.tracer is None
        for node in runtime.nodes.values():
            for instance in node.te_instances.values():
                assert all(e.trace_id is None
                           for b in instance.output_buffers.values()
                           for e in b)

    def test_one_trace_per_injection(self):
        runtime = deploy_wordcount()
        for i in range(5):
            runtime.inject("split", (i, "a b"))
        runtime.run_until_idle()
        traces = runtime.tracer.traces()
        assert len(traces) == 5
        assert sorted(t.trace_id for t in traces) == [1, 2, 3, 4, 5]

    def test_trace_id_rides_dispatch_fanout(self):
        runtime = deploy_wordcount()
        runtime.inject("split", (0, "x y z"))
        runtime.run_until_idle()
        (trace,) = runtime.tracer.traces()
        # One split hop, then one count hop per emitted word.
        assert [h.te for h in trace.hops] == ["split"] + ["count"] * 3
        assert trace.replayed_hops == 0
        assert trace.latency >= len(trace.hops)

    def test_queue_wait_observed(self):
        runtime = deploy_wordcount()
        # Ten items are queued before the engine takes a single step,
        # so later items demonstrably wait in the inbox.
        for i in range(10):
            runtime.inject("split", (i, "w"))
        runtime.run_until_idle()
        traces = runtime.tracer.traces()
        first_hops = [t.hops[0] for t in traces]
        assert all(h.enqueue_step <= h.entry_step for h in first_hops)
        assert max(h.queue_wait for h in first_hops) > 0
        assert all(h.service_steps >= 1 for h in first_hops)

    def test_repartition_keeps_trace_ids(self):
        runtime = Runtime(
            build_kv_sdg(),
            RuntimeConfig(se_instances={"table": 2}, trace=True),
        )
        runtime.deploy()
        # Queue items, then repartition before any of them is served:
        # the drained envelopes are re-routed under the new epoch but
        # must keep their original trace ids (no fresh traces minted).
        for i in range(8):
            runtime.inject("serve", ("put", i, i))
        runtime.scale_up("serve")
        runtime.run_until_idle()
        traces = runtime.tracer.traces()
        assert len(traces) == 8
        assert all(len(t.hops) == 1 for t in traces)
        assert all(t.replayed_hops == 0 for t in traces)

    def test_summary_renders(self):
        runtime = deploy_wordcount()
        for i in range(4):
            runtime.inject("split", (i, "a b c"))
        runtime.run_until_idle()
        summary = runtime.tracer.summary(limit=2)
        assert "traces: 4" in summary
        assert "p50=" in summary and "queue wait" in summary
        assert "split/0" in summary

"""Structural validation of SDGs.

Enforces the invariants stated in the paper:

* access edges form a partial function — each TE accesses at most one SE
  (§3.1); guaranteed by construction here, re-checked for completeness;
* partitioned SEs must be reached through a *unique* partitioning: all
  keyed dataflows into TEs that access the same partitioned SE must use
  the same key, and a partitioned matrix cannot be accessed by row and by
  column at once (§3.2);
* ``@Global`` access is only meaningful on partial SEs (§4.1);
* an ``ALL_TO_ONE`` (gather) edge must terminate at a merge TE, and merge
  TEs must be fed by gather edges (§4.2 rule 5);
* every TE should be reachable from an entry TE, otherwise it would never
  receive data.

Each check reports through the ``sdglint`` diagnostics engine:
:func:`collect` returns **every** violated invariant as a structured
:class:`~repro.analysis.diagnostics.Diagnostic`, while :func:`validate`
keeps the historical contract of raising
:class:`~repro.errors.ValidationError` on the first violation (with the
same messages, in the same order).
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, DiagnosticSink
from repro.core.dispatch import Dispatch
from repro.core.elements import AccessMode, StateKind
from repro.errors import ValidationError


def validate(sdg) -> None:
    """Raise :class:`ValidationError` on the first violated invariant."""
    diagnostics = collect(sdg)
    if diagnostics:
        raise ValidationError(diagnostics[0].message)


def collect(sdg) -> list[Diagnostic]:
    """Run every structural check; return all findings, raise nothing."""
    sink = DiagnosticSink()
    _check_access_modes(sdg, sink)
    _check_partitioned_access(sdg, sink)
    _check_gather_edges(sdg, sink)
    _check_reachability(sdg, sink)
    return sink.diagnostics


def _check_access_modes(sdg, sink: DiagnosticSink) -> None:
    for te in sdg.tasks.values():
        if te.state is None:
            continue
        se = sdg.state(te.state)
        if te.access is AccessMode.GLOBAL and se.kind is not StateKind.PARTIAL:
            sink.emit(
                "SDG201",
                f"TE {te.name!r} uses global access on SE {se.name!r}, "
                f"but global access requires partial state",
                origin=te.name,
                hint=f"declare {se.name!r} as Partial, or drop the "
                     f"global_ marker",
            )
        if (
            te.access is AccessMode.PARTITIONED
            and se.kind is not StateKind.PARTITIONED
        ):
            sink.emit(
                "SDG202",
                f"TE {te.name!r} uses partitioned access on SE "
                f"{se.name!r}, which is {se.kind.value}",
                origin=te.name,
                hint=f"declare {se.name!r} as Partitioned with a key, "
                     f"or access it locally",
            )
        if te.access is AccessMode.LOCAL and se.kind is StateKind.PARTITIONED:
            sink.emit(
                "SDG203",
                f"TE {te.name!r} uses local access on partitioned SE "
                f"{se.name!r}; partitioned SEs require keyed access",
                origin=te.name,
                hint="route items to this TE through a key-partitioned "
                     "dataflow",
            )


def _check_partitioned_access(sdg, sink: DiagnosticSink) -> None:
    """All routes into one partitioned SE must agree on the key (§3.2)."""
    for se in sdg.states.values():
        if se.kind is not StateKind.PARTITIONED:
            continue
        key_names: set[str] = set()
        for te in sdg.tasks_accessing(se.name):
            if te.is_entry:
                if te.entry_key_fn is None:
                    sink.emit(
                        "SDG211",
                        f"entry TE {te.name!r} accesses partitioned SE "
                        f"{se.name!r} but declares no entry_key_fn; "
                        f"external input must be dispatched by key",
                        origin=te.name,
                        hint="pass entry_key_fn= (and entry_key_name=) "
                             "when declaring the entry TE",
                    )
                key_names.add(te.entry_key_name or "<anonymous>")
            for edge in sdg.predecessors(te.name):
                if edge.dispatch is Dispatch.KEY_PARTITIONED:
                    key_names.add(edge.key_name or "<anonymous>")
                elif edge.dispatch is not Dispatch.ALL_TO_ONE:
                    sink.emit(
                        "SDG212",
                        f"dataflow {edge.src}->{edge.dst} reaches TE "
                        f"{te.name!r} accessing partitioned SE "
                        f"{se.name!r} but is dispatched "
                        f"{edge.dispatch.value!r}; keyed dispatch is "
                        f"required for local partition access",
                        origin=te.name,
                        hint="connect the edge with "
                             "Dispatch.KEY_PARTITIONED and a key_fn",
                    )
        named = {k for k in key_names if k != "<anonymous>"}
        if len(named) > 1:
            sink.emit(
                "SDG213",
                f"partitioned SE {se.name!r} is accessed with conflicting "
                f"partitioning keys {sorted(named)}; a unique partitioning "
                f"is required",
                origin=se.name,
                hint="re-key every route into the SE to one partition "
                     "key, or split the SE",
            )


def _check_gather_edges(sdg, sink: DiagnosticSink) -> None:
    for edge in sdg.dataflows:
        dst = sdg.task(edge.dst)
        if edge.dispatch is Dispatch.ALL_TO_ONE and not dst.is_merge:
            sink.emit(
                "SDG221",
                f"gather dataflow {edge.src}->{edge.dst} must end at a "
                f"merge TE (a synchronisation barrier)",
                origin=edge.dst,
                hint="mark the destination TE is_merge=True and give it "
                     "merge semantics",
            )
    for te in sdg.tasks.values():
        if not te.is_merge:
            continue
        incoming = sdg.predecessors(te.name)
        if incoming and not any(
            e.dispatch is Dispatch.ALL_TO_ONE for e in incoming
        ):
            sink.emit(
                "SDG222",
                f"merge TE {te.name!r} has no all-to-one input; a merge "
                f"reconciles gathered partial values",
                origin=te.name,
                hint="feed the merge through Dispatch.ALL_TO_ONE",
            )


def _check_reachability(sdg, sink: DiagnosticSink) -> None:
    if not sdg.entries():
        sink.emit(
            "SDG231", "SDG has no entry task element",
            hint="mark at least one TE is_entry=True so external input "
                 "can enter the graph",
        )
        return
    reachable = sdg.reachable_from_entries()
    unreachable = set(sdg.tasks) - reachable
    if unreachable:
        sink.emit(
            "SDG232",
            f"task elements unreachable from any entry: "
            f"{sorted(unreachable)}",
            hint="connect the orphaned TEs to the dataflow or remove "
                 "them",
        )

"""Naiad (v0.2) mechanism model.

Naiad represents state explicitly but checkpoints with a *synchronous
global* ("stop-the-world") protocol — the only fault-tolerance mechanism
in the open-source release the paper measured. Processing halts for the
entire persist duration, so throughput and tail latency degrade with the
state size (Fig. 6): on disk the collapse is dramatic; on a RAM disk
(Naiad-NoDisk) the pause still costs a large fraction of throughput.

Naiad's execution is batched: the batch size trades latency for
throughput (Fig. 8's Naiad-LowLatency = 1 000 messages vs
Naiad-HighThroughput = 20 000 messages), and every batch pays a
scheduling/coordination delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.batching import microbatch_throughput
from repro.simulation.stateful_node import (
    CheckpointPolicy,
    NodeParams,
    SimResult,
    simulate_node,
)


@dataclass(frozen=True)
class NaiadModel:
    """A Naiad deployment configuration."""

    #: Per-node service rate when unimpeded (same hardware as SDG).
    service_rate: float = 65_000.0
    #: Micro-batch size in messages.
    batch_size: float = 1_000.0
    #: Per-batch scheduling/coordination delay.
    scheduling_overhead_s: float = 0.010
    #: Checkpoint persist bandwidth: a disk, or memcpy for NoDisk.
    disk_bw: float = 100e6
    checkpoint_interval_s: float = 10.0

    @staticmethod
    def disk() -> "NaiadModel":
        """Naiad-Disk: checkpoints on spinning storage (Fig. 6)."""
        return NaiadModel(disk_bw=60e6)

    @staticmethod
    def nodisk() -> "NaiadModel":
        """Naiad-NoDisk: checkpoints on a RAM disk (Fig. 6).

        Even without disk I/O the stop-the-world checkpoint must
        serialise the whole state while processing is halted; the
        effective rate is serialisation-bound. Calibrated to the paper's
        measurement (63% below SDG throughput at 2.5 GB).
        """
        return NaiadModel(disk_bw=147e6)

    @staticmethod
    def low_latency() -> "NaiadModel":
        """Fig. 8's Naiad-LowLatency (1 000-message batches)."""
        return NaiadModel(batch_size=1_000.0, service_rate=100_000.0,
                          scheduling_overhead_s=0.008)

    @staticmethod
    def high_throughput() -> "NaiadModel":
        """Fig. 8's Naiad-HighThroughput (20 000-message batches)."""
        return NaiadModel(batch_size=20_000.0, service_rate=130_000.0,
                          scheduling_overhead_s=0.020)

    # -- checkpointing behaviour (Figs. 6, 12) ---------------------------

    def checkpoint_policy(self) -> CheckpointPolicy:
        """Synchronous stop-the-world checkpointing."""
        return CheckpointPolicy(
            mode="sync",
            interval_s=self.checkpoint_interval_s,
            disk_bw=self.disk_bw,
        )

    def simulate(self, offered_rate: float, state_bytes: float,
                 duration_s: float = 60.0,
                 tick_s: float = 0.002) -> SimResult:
        """Serve a KV-style update stream with sync checkpoints."""
        params = NodeParams(service_rate=self.service_rate,
                            state_bytes=state_bytes)
        return simulate_node(offered_rate, params,
                             self.checkpoint_policy(),
                             duration_s=duration_s, tick_s=tick_s)

    # -- batching behaviour (Fig. 8) ------------------------------------

    def batch_span_s(self) -> float:
        """Stream time covered by one batch at full processing rate."""
        return self.batch_size / self.service_rate

    def wordcount_throughput(self, window_s: float) -> float:
        """Sustainable wordcount throughput at a given window size.

        Unlike D-Streams, Naiad configures the batch size independently
        of the window (§6.1), so the constraint is the batch *span*: a
        batch covering more stream time than one window cannot cut
        per-window results, and throughput collapses (the cliffs of
        Fig. 8 — Naiad-HighThroughput's 20 000-message batches span
        ~150 ms, hence no windows below 100 ms).
        """
        if window_s < self.batch_span_s():
            return 0.0
        return microbatch_throughput(self.service_rate, self.batch_size,
                                     self.scheduling_overhead_s)

"""Chaos layer: deterministic fault plans and a step-hook injector.

Compose a :class:`~repro.chaos.plan.FaultPlan` (or draw one with
:func:`~repro.chaos.plan.random_plan`), install a
:class:`~repro.chaos.injector.FaultInjector` on the runtime, and run
the workload — faults land at exact logical steps, reproducibly.
Pair with a :class:`~repro.runtime.detector.FailureDetector` and a
:class:`~repro.recovery.supervisor.RecoverySupervisor` to exercise the
full detect-and-repair loop.
"""

from repro.chaos.injector import FaultInjector, InjectionRecord
from repro.chaos.plan import (
    CorruptChunk,
    CorruptDeltaChunk,
    CrashTask,
    DropDeltaChunk,
    DropEnvelope,
    DuplicateEnvelope,
    Fault,
    FaultPlan,
    KillNode,
    ScaleUp,
    SlowNode,
    TargetOffline,
    fault_from_dict,
    fault_to_dict,
    random_plan,
)

__all__ = [
    "CorruptChunk",
    "CorruptDeltaChunk",
    "CrashTask",
    "DropDeltaChunk",
    "DropEnvelope",
    "DuplicateEnvelope",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "InjectionRecord",
    "KillNode",
    "ScaleUp",
    "SlowNode",
    "TargetOffline",
    "fault_from_dict",
    "fault_to_dict",
    "random_plan",
]

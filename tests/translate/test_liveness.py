"""Unit tests for live-variable analysis (step 5)."""

import ast

from repro.translate.liveness import block_uses_defs, live_ins, uses_defs


def stmt(code: str) -> ast.stmt:
    return ast.parse(code).body[0]


def stmts(code: str) -> list[ast.stmt]:
    return ast.parse(code).body


class TestUsesDefs:
    def test_simple_assign(self):
        uses, defs = uses_defs(stmt("x = y + 1"))
        assert uses == {"y"}
        assert defs == {"x"}

    def test_use_before_def_within_statement(self):
        uses, defs = uses_defs(stmt("x = x + 1"))
        assert uses == {"x"}
        assert defs == {"x"}

    def test_def_then_use_is_not_a_use(self):
        uses, defs = block_uses_defs(stmts("x = 1\ny = x"))
        assert uses == set()
        assert defs == {"x", "y"}

    def test_aug_assign_uses_target(self):
        uses, defs = uses_defs(stmt("total += v"))
        assert uses == {"total", "v"}
        assert defs == {"total"}

    def test_for_loop_target_is_def(self):
        uses, defs = uses_defs(stmt(
            "for i in items:\n    out = out + i"
        ))
        assert "items" in uses
        assert "out" in uses  # used before defined on first iteration
        assert "i" in defs

    def test_loop_local_def_before_use_not_live(self):
        uses, defs = uses_defs(stmt(
            "for i in items:\n    t = i * 2\n    acc.append(t)"
        ))
        assert "t" not in uses
        assert "acc" in uses

    def test_if_branches_union_uses(self):
        uses, defs = uses_defs(stmt(
            "if cond:\n    x = a\nelse:\n    x = b"
        ))
        assert uses == {"cond", "a", "b"}
        assert defs == {"x"}

    def test_self_is_ignored(self):
        uses, defs = uses_defs(stmt("self.table.put(k, v)"))
        assert uses == {"k", "v"}

    def test_comprehension_target_is_scoped(self):
        uses, defs = uses_defs(stmt("out = [w * 2 for w in words]"))
        assert uses == {"words"}
        assert "w" not in defs

    def test_lambda_params_are_scoped(self):
        uses, defs = uses_defs(stmt("f = lambda a: a + b"))
        assert uses == {"b"}


class TestBlockLiveness:
    def test_params_feed_first_block(self):
        blocks = [stmts("x = user + 1"), stmts("y = x + item")]
        lives = live_ins(blocks, ["user", "item"])
        assert lives[0] == ["user", "item"]
        assert lives[1] == ["item", "x"]

    def test_transitive_liveness(self):
        # 'user' skips the middle block and is used in the last one.
        blocks = [stmts("a = user"), stmts("b = a"), stmts("c = b + user")]
        lives = live_ins(blocks, ["user"])
        assert lives[1] == ["a", "user"]
        assert lives[2] == ["b", "user"]

    def test_redefined_variable_not_carried(self):
        blocks = [stmts("x = 1"), stmts("x = 2\ny = x")]
        lives = live_ins(blocks, [])
        assert lives[1] == []

    def test_globals_not_carried(self):
        # 'range' is never defined upstream, so it is not payload.
        blocks = [stmts("x = 1"), stmts("y = [x for i in range(3)]")]
        lives = live_ins(blocks, [])
        assert lives[1] == ["x"]

    def test_deterministic_order(self):
        blocks = [stmts("b = 1\na = 2\nz = 3"), stmts("w = a + b + z")]
        assert live_ins(blocks, [])[1] == ["a", "b", "z"]


class TestAugmentedAssignment:
    def test_aug_assign_keeps_variable_live_across_blocks(self):
        # 't += delta' both uses and defines t: the upstream t must
        # travel on the edge even though the block also defines it.
        blocks = [stmts("t = seed"), stmts("t += delta\nout = t")]
        lives = live_ins(blocks, ["seed", "delta"])
        assert lives[1] == ["delta", "t"]

    def test_aug_assign_with_subscript_target(self):
        uses, defs = uses_defs(stmt("acc[k] += v"))
        assert {"acc", "k", "v"} <= uses


class TestBranchOnlyDefinitions:
    def test_branch_def_is_optimistically_available_downstream(self):
        # x is only defined when cond holds; the analysis assumes
        # well-formed programs (the paper's contract) and treats it as
        # available, so it is carried instead of dropped.
        blocks = [stmts("if cond:\n    x = a"), stmts("y = x")]
        lives = live_ins(blocks, ["cond", "a"])
        assert lives[1] == ["x"]

    def test_branch_def_shadows_within_block(self):
        uses, defs = block_uses_defs(stmts("if c:\n    x = 1\ny = x"))
        assert uses == {"c"}  # optimistic: x counts as defined
        assert {"x", "y"} <= defs

    def test_else_only_use_still_counts(self):
        uses, _ = uses_defs(stmt(
            "if c:\n    x = a\nelse:\n    x = fallback"
        ))
        assert uses == {"c", "a", "fallback"}


class TestLoopCarriedVariables:
    def test_loop_accumulator_is_live_into_and_out_of_the_loop(self):
        blocks = [
            stmts("total = 0"),
            stmts("for w in words:\n    total = total + w"),
            stmts("out = total"),
        ]
        lives = live_ins(blocks, ["words"])
        assert lives[1] == ["total", "words"]
        assert lives[2] == ["total"]

    def test_loop_carried_use_detected_inside_one_statement(self):
        # First iteration reads the upstream total: a loop-carried use.
        uses, defs = uses_defs(stmt(
            "for w in words:\n    total = total + w"
        ))
        assert "total" in uses and "total" in defs

    def test_while_loop_carried_variable(self):
        uses, defs = uses_defs(stmt("while n > 0:\n    n = n - 1"))
        assert uses == {"n"}
        assert defs == {"n"}

    def test_loop_local_temporary_not_carried(self):
        blocks = [
            stmts("acc = []"),
            stmts("for i in items:\n    t = i * 2\n    acc.append(t)"),
        ]
        lives = live_ins(blocks, ["items"])
        assert lives[1] == ["acc", "items"]  # t stays inside the loop

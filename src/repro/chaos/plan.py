"""Fault plans: declarative, deterministic chaos schedules.

A fault plan is an ordered list of fault records, each pinned to a
logical step (``at_step``) of the runtime. Targets are *selectors*
rather than raw node ids — "the node hosting partition 2 of SE
``table``" — because node ids are only known at execution time and
change as recovery replaces nodes. The
:class:`~repro.chaos.injector.FaultInjector` resolves selectors when a
fault fires.

:func:`random_plan` draws a reproducible plan from a seed — the chaos
soak tests run a fixed seed in CI and crank the seed range locally.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

from repro.errors import ChaosError


@dataclass(frozen=True)
class KillNode:
    """Fail the node hosting an SE partition (or a node by id)."""

    at_step: int
    se: str | None = None
    index: int = 0
    node_id: int | None = None


@dataclass(frozen=True)
class CrashTask:
    """Make one TE instance raise out of its task code mid-item."""

    at_step: int
    te: str
    index: int = 0


@dataclass(frozen=True)
class SlowNode:
    """Inflate a node's per-step service time (``factor`` = new speed).

    ``factor=0`` pauses the node entirely; the failure detector then
    reports it as stalled once it sits on queued work long enough.
    """

    at_step: int
    factor: float
    se: str | None = None
    index: int = 0
    node_id: int | None = None


@dataclass(frozen=True)
class DropEnvelope:
    """Lose one in-flight envelope, then fail the destination node.

    The engine's channels are reliable FIFO: a silently lost envelope
    with no subsequent failure is unrecoverable by design (the paper
    assumes TCP). Chaos therefore models the realistic compound event —
    the fault that ate the packet also takes the node down — so that
    replay-based recovery is responsible for resurrecting the lost item.
    """

    at_step: int
    te: str
    index: int = 0


@dataclass(frozen=True)
class DuplicateEnvelope:
    """Redeliver an already-queued envelope (tests timestamp dedup)."""

    at_step: int
    te: str
    index: int = 0


@dataclass(frozen=True)
class CorruptChunk:
    """Flip bytes in one backed-up checkpoint chunk."""

    at_step: int
    node_id: int | None = None


@dataclass(frozen=True)
class CorruptDeltaChunk:
    """Flip bytes in one backed-up *delta* chunk.

    Exercises the supervisor's base-only fallback: the base of the
    chain stays intact, only an incremental link is tampered with.
    Skipped (logged) when no delta chunk is stored at fire time.
    """

    at_step: int
    node_id: int | None = None


@dataclass(frozen=True)
class DropDeltaChunk:
    """Erase one backed-up *delta* chunk (a lost backup file).

    The chunk-count integrity check reports the gap on restore; the
    supervisor then falls back to base-only recovery.
    """

    at_step: int
    node_id: int | None = None


@dataclass(frozen=True)
class TargetOffline:
    """Take a backup-store target offline (or bring it back)."""

    at_step: int
    target: int
    offline: bool = True


@dataclass(frozen=True)
class ScaleUp:
    """Grow a TE by one instance (repartitions its SE, bumps the epoch).

    Retried automatically by the injector when the runtime refuses
    (checkpoint mid-flight, failed instance pending recovery).
    """

    at_step: int
    te: str


Fault = (KillNode | CrashTask | SlowNode | DropEnvelope
         | DuplicateEnvelope | CorruptChunk | CorruptDeltaChunk
         | DropDeltaChunk | TargetOffline | ScaleUp)

_FAULT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (KillNode, CrashTask, SlowNode, DropEnvelope,
                DuplicateEnvelope, CorruptChunk, CorruptDeltaChunk,
                DropDeltaChunk, TargetOffline, ScaleUp)
}


def fault_to_dict(fault: Fault) -> dict:
    """A JSON-ready record: the fault's fields plus its type tag."""
    return {"type": type(fault).__name__, **dataclasses.asdict(fault)}


def fault_from_dict(record: dict) -> Fault:
    """Inverse of :func:`fault_to_dict`; unknown tags are refused."""
    fields = dict(record)
    tag = fields.pop("type", None)
    cls = _FAULT_TYPES.get(tag)
    if cls is None:
        raise ChaosError(f"unknown fault type {tag!r} in {record!r}")
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ChaosError(f"bad fault record {record!r}: {exc}") from exc


@dataclass
class FaultPlan:
    """An ordered, step-stamped schedule of faults."""

    faults: list[Fault] = field(default_factory=list)
    seed: int | None = None

    def __post_init__(self) -> None:
        for fault in self.faults:
            if fault.at_step < 0:
                raise ChaosError(
                    f"fault scheduled before step 0: {fault!r}"
                )
        self.faults.sort(key=lambda f: f.at_step)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def kills(self) -> list[KillNode]:
        return [f for f in self.faults if isinstance(f, KillNode)]

    def to_dict(self) -> dict:
        """JSON-ready form (stored verbatim in durable run manifests)."""
        return {
            "seed": self.seed,
            "faults": [fault_to_dict(f) for f in self.faults],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "FaultPlan":
        return cls(
            faults=[fault_from_dict(f) for f in record.get("faults", [])],
            seed=record.get("seed"),
        )


def random_plan(seed: int, *, horizon: int, se: str,
                entry_te: str | None = None,
                n_kills: int = 3, n_crashes: int = 1,
                n_duplicates: int = 2, n_slow: int = 0,
                n_scale_ups: int = 1,
                min_gap: int = 60) -> FaultPlan:
    """Draw a reproducible fault plan over ``horizon`` logical steps.

    Kills (and crashes, which also take their node down) are spaced at
    least ``min_gap`` steps apart so each detection→recovery cycle can
    complete before the next failure lands — the paper's single-failure-
    at-a-time recovery assumption, applied per window.
    """
    if horizon < (n_kills + n_crashes + 1) * min_gap:
        raise ChaosError(
            f"horizon {horizon} too short for {n_kills} kills and "
            f"{n_crashes} crashes spaced {min_gap} steps apart"
        )
    rng = random.Random(seed)
    faults: list[Fault] = []

    # Failure steps: evenly strided windows, jittered within each.
    n_failures = n_kills + n_crashes
    stride = horizon // (n_failures + 1)
    failure_steps = [
        (i + 1) * stride + rng.randrange(-stride // 4, stride // 4 + 1)
        for i in range(n_failures)
    ]
    kinds = ["kill"] * n_kills + ["crash"] * n_crashes
    rng.shuffle(kinds)
    for step, kind in zip(failure_steps, kinds):
        if kind == "kill":
            faults.append(KillNode(at_step=step, se=se,
                                   index=rng.randrange(8)))
        else:
            faults.append(CrashTask(at_step=step,
                                    te=entry_te or se,
                                    index=rng.randrange(8)))

    for _ in range(n_duplicates):
        faults.append(DuplicateEnvelope(
            at_step=rng.randrange(horizon // 10, horizon),
            te=entry_te or se, index=rng.randrange(8),
        ))
    for _ in range(n_slow):
        faults.append(SlowNode(
            at_step=rng.randrange(horizon // 10, horizon // 2),
            factor=0.25 + rng.random() * 0.5,
            se=se, index=rng.randrange(8),
        ))
    if entry_te is not None:
        for _ in range(n_scale_ups):
            faults.append(ScaleUp(
                at_step=rng.randrange(horizon // 8, horizon // 2),
                te=entry_te,
            ))
    return FaultPlan(faults=faults, seed=seed)

"""Run manifests: the durable identity of an epoch-driven run.

A *run manifest* is a single JSON document in the run directory that
records everything needed to resume a killed process: the program's
structural fingerprint, the run spec (workload seed, epoch sizing,
deployment knobs), the chaos fault plan, and one :class:`EpochRecord`
per committed epoch — workload position, engine counters, the per-node
checkpoint versions fenced by that commit, the event-log export
watermark and the ``stable_hash`` of all SE state at the boundary.

The manifest is the *fence*: an epoch exists once — and only once —
its record is in the manifest, and the manifest is replaced atomically
(temp file + fsync + ``os.replace`` + directory fsync). A crash at any
instant therefore leaves either epoch K or epoch K-1 committed, never
a half-written document; :func:`atomic_write_json` exposes injectable
crash points (:data:`CRASH_POINTS`) so the property test can prove it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.errors import DurabilityError
from repro.state.base import stable_hash

#: Bump on any incompatible manifest layout change; ``load_manifest``
#: refuses documents written by a different schema.
SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"


class SimulatedCrash(RuntimeError):
    """Raised by :func:`atomic_write_json` at an injected crash point.

    Deliberately *not* an :class:`~repro.errors.SDGError`: production
    code must never catch it by accident — only the crash-consistency
    tests do, to model power loss between two specific syscalls.
    """


#: Every distinct interruption point of the atomic write protocol, in
#: execution order. Crashing at any of them must leave the previous
#: manifest readable; only from ``after-replace`` onward is the new one.
CRASH_POINTS = (
    "before-temp",
    "mid-temp-write",
    "before-temp-fsync",
    "after-temp-fsync",
    "after-replace",
    "after-dir-fsync",
)


def _fsync_dir(path: str) -> None:
    fd = os.open(path or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_json(path: str, payload: dict,
                      crash_at: str | None = None) -> None:
    """Replace ``path`` with ``payload`` as JSON, atomically.

    ``crash_at`` (one of :data:`CRASH_POINTS`) aborts the protocol at
    that exact point with :class:`SimulatedCrash`, leaving the
    filesystem as a power cut there would.
    """
    if crash_at is not None and crash_at not in CRASH_POINTS:
        raise ValueError(f"unknown crash point {crash_at!r}")
    if crash_at == "before-temp":
        raise SimulatedCrash(crash_at)
    tmp = path + ".tmp"
    data = json.dumps(payload, indent=2, sort_keys=True)
    with open(tmp, "w", encoding="utf-8") as fh:
        if crash_at == "mid-temp-write":
            fh.write(data[: len(data) // 2])
            fh.flush()
            raise SimulatedCrash(crash_at)
        fh.write(data)
        fh.flush()
        if crash_at == "before-temp-fsync":
            raise SimulatedCrash(crash_at)
        os.fsync(fh.fileno())
    if crash_at == "after-temp-fsync":
        raise SimulatedCrash(crash_at)
    os.replace(tmp, path)
    if crash_at == "after-replace":
        raise SimulatedCrash(crash_at)
    _fsync_dir(os.path.dirname(path))
    if crash_at == "after-dir-fsync":
        raise SimulatedCrash(crash_at)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


def sdg_fingerprint(sdg) -> int:
    """A process-stable structural hash of a translated SDG.

    Covers element names, kinds, access modes, entry/merge flags, key
    names and dataflow edges — everything that determines routing and
    state layout. Task *code* is deliberately excluded (function objects
    have no stable serialisation); the fingerprint guards against
    resuming a manifest with a structurally different program, which is
    the failure mode that corrupts state silently.
    """
    parts: list = [("sdg", sdg.name)]
    for name in sorted(sdg.states):
        spec = sdg.state(name)
        parts.append(("se", name, spec.kind.value, spec.partition_by,
                      getattr(spec.factory, "__name__", repr(spec.factory))))
    for name in sorted(sdg.tasks):
        spec = sdg.task(name)
        parts.append(("te", name, spec.state, spec.access.value,
                      spec.is_entry, spec.is_merge, spec.entry_key_name))
    for edge in sdg.dataflows:
        parts.append(("edge", edge.src, edge.dst, edge.dispatch.value,
                      edge.key_name))
    return stable_hash(tuple(parts))


def state_fingerprint(runtime) -> int:
    """``stable_hash`` over every entry of every SE of a runtime.

    Entries of one SE are merged across its instances and folded in
    sorted order, so the fingerprint is independent of partition layout
    and of scheduling interleavings — two runs agree iff they applied
    the same set of state mutations. This is the per-epoch hash the
    manifest commits and every resume path must reproduce.
    """
    acc = 0
    for se_name in sorted(runtime.sdg.states):
        entry_hashes: list[int] = []
        for instance in runtime.se_instances(se_name):
            for chunk in instance.element.to_chunks(1):
                entry_hashes.extend(
                    stable_hash((key, value)) for key, value in chunk.items
                )
        entry_hashes.sort()
        acc = stable_hash((acc, se_name, tuple(entry_hashes)))
    return acc


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------


@dataclass
class EpochRecord:
    """Everything one committed epoch fences."""

    #: 1-based epoch number.
    epoch: int
    #: Items of the seeded workload stream consumed so far.
    position: int
    #: State fingerprint at the boundary (the resume contract).
    state_hash: int
    #: Engine injection counters, per entry TE.
    input_seq: dict[str, int] = field(default_factory=dict)
    #: Round-robin cursors for non-keyed entry TEs.
    input_rr: dict[str, int] = field(default_factory=dict)
    #: Logical time at the boundary.
    total_steps: int = 0
    #: node id -> checkpoint version fenced by this commit.
    checkpoints: dict[int, int] = field(default_factory=dict)
    #: Whether the fast (checkpoint) resume path may be used: no scale
    #: events and no repartition epochs — instance counts still match a
    #: fresh deployment. Node kills keep the topology *clean* (restores
    #: map by instance key, not node id); scale-ups do not.
    clean_topology: bool = True
    #: Events of this incarnation exported up to the commit.
    events_seq: int = 0
    #: Durable byte offset of ``events.jsonl`` at the commit.
    events_offset: int = 0
    #: Chaos faults not yet executed, serialised.
    pending_faults: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "position": self.position,
            "state_hash": self.state_hash,
            "input_seq": dict(self.input_seq),
            "input_rr": dict(self.input_rr),
            "total_steps": self.total_steps,
            "checkpoints": {str(node): version
                            for node, version in self.checkpoints.items()},
            "clean_topology": self.clean_topology,
            "events_seq": self.events_seq,
            "events_offset": self.events_offset,
            "pending_faults": list(self.pending_faults),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "EpochRecord":
        return cls(
            epoch=record["epoch"],
            position=record["position"],
            state_hash=record["state_hash"],
            input_seq=dict(record.get("input_seq", {})),
            input_rr=dict(record.get("input_rr", {})),
            total_steps=record.get("total_steps", 0),
            checkpoints={int(node): version
                         for node, version in
                         record.get("checkpoints", {}).items()},
            clean_topology=record.get("clean_topology", True),
            events_seq=record.get("events_seq", 0),
            events_offset=record.get("events_offset", 0),
            pending_faults=list(record.get("pending_faults", [])),
        )


@dataclass
class RunManifest:
    """The on-disk source of truth for one durable run."""

    run_id: str
    #: Program identity: app name, SDG name, structural fingerprint.
    program: dict
    #: The serialised :class:`~repro.durability.workload.RunSpec`.
    spec: dict
    #: The serialised chaos plan, or None for fault-free runs.
    fault_plan: dict | None = None
    epochs: list[EpochRecord] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    @property
    def committed_epoch(self) -> int:
        """The highest fenced epoch (0 before the first commit)."""
        return self.epochs[-1].epoch if self.epochs else 0

    @property
    def latest(self) -> EpochRecord | None:
        return self.epochs[-1] if self.epochs else None

    def record_for(self, epoch: int) -> EpochRecord:
        for record in self.epochs:
            if record.epoch == epoch:
                return record
        raise DurabilityError(
            f"run {self.run_id!r} has no committed epoch {epoch} "
            f"(committed up to {self.committed_epoch})"
        )

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "program": dict(self.program),
            "spec": dict(self.spec),
            "fault_plan": self.fault_plan,
            "epochs": [record.to_dict() for record in self.epochs],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "RunManifest":
        version = record.get("schema_version")
        if version != SCHEMA_VERSION:
            raise DurabilityError(
                f"manifest schema version {version!r} is not supported "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        return cls(
            run_id=record["run_id"],
            program=dict(record["program"]),
            spec=dict(record["spec"]),
            fault_plan=record.get("fault_plan"),
            epochs=[EpochRecord.from_dict(e)
                    for e in record.get("epochs", [])],
            schema_version=version,
        )


def manifest_path(run_dir: str) -> str:
    return os.path.join(run_dir, MANIFEST_NAME)


def write_manifest(run_dir: str, manifest: RunManifest,
                   crash_at: str | None = None) -> None:
    atomic_write_json(manifest_path(run_dir), manifest.to_dict(),
                      crash_at=crash_at)


def load_manifest(run_dir: str) -> RunManifest:
    path = manifest_path(run_dir)
    if not os.path.exists(path):
        raise DurabilityError(
            f"{run_dir!r} is not a durable run directory (no "
            f"{MANIFEST_NAME})"
        )
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise DurabilityError(
            f"cannot read run manifest {path!r}: {exc}"
        ) from exc
    return RunManifest.from_dict(record)

"""Instrumented workload runner behind the ``repro obs`` CLI command.

``repro obs`` deploys one of the benchmark applications with the full
observability stack on — metrics registry, causal tracing, event bus —
plus scheduled checkpoints, failure detection and supervised recovery,
optionally injects a mid-run fault, and renders everything the run
produced: a Prometheus-text metrics dump spanning engine / transport /
state / recovery / chaos, the event-bus digest, and the tracer's
per-envelope hop lists with queue-wait breakdowns.

This module is deliberately *outside* the obs core (`metrics` /
`events` / `trace` never import the runtime); the runner is CLI glue
and imports both sides freely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultPlan, KillNode
from repro.errors import SDGError
from repro.recovery.backup import BackupStore
from repro.recovery.checkpoint import CheckpointManager
from repro.recovery.manager import RecoveryManager
from repro.recovery.scheduler import CheckpointScheduler
from repro.recovery.supervisor import RecoverySupervisor
from repro.runtime.detector import FailureDetector
from repro.runtime.engine import Runtime, RuntimeConfig

#: Deterministic corpus the wordcount workload cycles through.
_CORPUS = (
    "the quick brown fox jumps over the lazy dog",
    "state is made explicit and managed by the runtime",
    "checkpoint restore replay repartition scale out",
    "every envelope carries a trace id across the dataflow",
    "big data processing with imperative programs",
)

#: Bounded keep-alive: how many extra pump rounds the runner allows for
#: detection + supervised recovery to settle after the fault fires.
_MAX_PUMP_ROUNDS = 200


@dataclass
class ObsRun:
    """Everything a finished instrumented run exposes to the renderer."""

    app: str
    items: int
    runtime: Runtime
    supervisor: RecoverySupervisor
    injector: FaultInjector | None
    scheduler: CheckpointScheduler


def _deploy(app: str, trace: bool, optimize: bool = False) -> Runtime:
    if app == "wordcount":
        from repro.apps.wordcount import build_wordcount_sdg

        sdg = build_wordcount_sdg(window_size=10)
        config = RuntimeConfig(se_instances={"counts": 2}, trace=trace,
                               optimize=optimize)
    elif app == "kvstore":
        from repro.testing import build_kv_sdg

        sdg = build_kv_sdg()
        config = RuntimeConfig(se_instances={"table": 2}, trace=trace,
                               optimize=optimize)
    else:
        raise SDGError(
            f"unknown obs app {app!r}; choose wordcount or kvstore"
        )
    runtime = Runtime(sdg, config)
    runtime.deploy()
    return runtime


def _feed(runtime: Runtime, app: str, start: int, count: int) -> None:
    if app == "wordcount":
        for i in range(start, start + count):
            runtime.inject("split", (i, _CORPUS[i % len(_CORPUS)]))
    else:
        for i in range(start, start + count):
            runtime.inject("serve", ("put", i % 40, i))


def _queries(runtime: Runtime, app: str, count: int) -> None:
    """Read-side traffic; also the keep-alive pump during recovery."""
    if app == "wordcount":
        for i in range(count):
            line = _CORPUS[i % len(_CORPUS)]
            runtime.inject("query", (i, line.split()[0]))
    else:
        for i in range(count):
            runtime.inject("serve", ("get", i % 40, None))


def run_workload(app: str = "wordcount", items: int = 120, *,
                 trace: bool = True, chaos: bool = True,
                 optimize: bool = False) -> ObsRun:
    """Run one fully instrumented, supervised, optionally chaotic pass.

    Injects ``items`` workload items in two halves; with ``chaos`` a
    :class:`KillNode` fault lands between them and the run keeps
    pumping until the supervisor has restored the victim. With
    ``optimize`` the runtime deploys capability-driven dispatch (note
    the tracer keeps transport coalescing off, so pair ``optimize``
    with ``trace=False`` to see batched deliveries in the digest).
    """
    if items < 2:
        raise SDGError(f"obs run needs at least 2 items, got {items}")
    runtime = _deploy(app, trace, optimize)
    store = BackupStore(m_targets=2)
    # trim_input_log=False keeps the supervisor's log-replay rung sound.
    manager = CheckpointManager(runtime, store, trim_input_log=False)
    scheduler = CheckpointScheduler(manager, every_items=25,
                                    complete_after_steps=5).install()
    detector = FailureDetector(runtime, heartbeat_timeout=20,
                               check_every=5).install()
    supervisor = RecoverySupervisor(
        detector, RecoveryManager(runtime, store), backoff_steps=10,
    ).install()

    half = items // 2
    _feed(runtime, app, 0, half)
    runtime.run_until_idle()

    injector = None
    if chaos:
        se = "counts" if app == "wordcount" else "table"
        plan = FaultPlan([
            KillNode(at_step=runtime.total_steps + 5, se=se, index=0),
        ])
        injector = FaultInjector(runtime, plan, store=store).install()

    _feed(runtime, app, half, items - half)
    runtime.run_until_idle()

    # Keep the engine stepping until every fault fired and every
    # supervised recovery finished (bounded; raises on no-settle).
    rounds = 0
    while not (supervisor.settled
               and not detector.unreported_dead_nodes()
               and (injector is None or injector.done)):
        rounds += 1
        if rounds > _MAX_PUMP_ROUNDS:
            raise SDGError("obs run failed to settle after recovery")
        _queries(runtime, app, 2)
        runtime.run_until_idle()

    _queries(runtime, app, min(10, items))
    runtime.run_until_idle()
    scheduler.flush()
    runtime.run_until_idle()
    return ObsRun(app=app, items=items, runtime=runtime,
                  supervisor=supervisor, injector=injector,
                  scheduler=scheduler)


def render_report(run: ObsRun, *, trace_limit: int = 8) -> str:
    """The full ``repro obs`` report: metrics, events, traces."""
    runtime = run.runtime
    # Substrate-agnostic view: on the multiprocess substrate this folds
    # every worker's registry shard (as of the last barrier) into the
    # coordinator's series; in-process it is runtime.metrics itself.
    metrics = runtime.merged_metrics()
    names = metrics.names()
    lines = [
        f"== repro obs: app={run.app} items={run.items} "
        f"steps={runtime.total_steps} "
        f"chaos={'on' if run.injector is not None else 'off'} "
        f"trace={'on' if runtime.tracer is not None else 'off'} ==",
        "",
        f"-- metrics ({len(names)} series) --",
        metrics.to_prometheus_text().rstrip("\n"),
        "",
        "-- optimizer --",
    ]
    caps = runtime.capabilities
    lines.append(f"  capabilities: "
                 f"{', '.join(caps.flags) if caps and caps.flags else '(none)'}"
                 f"{'' if caps is not None else ' [optimize off]'}")
    for counter in ("dispatch_coalesced_total",
                    "merge_early_completions_total",
                    "state_rmw_batches_total"):
        lines.append(f"  {counter}: {metrics.total(counter):.0f}")
    lines.extend([
        "",
        f"-- events ({len(runtime.events)} published) --",
    ])
    for kind, count in sorted(runtime.events.counts_by_kind().items()):
        lines.append(f"  {kind}: {count}")
    cycles = run.supervisor.cycles()
    if cycles:
        lines.append("  recovery cycles:")
        for detection, outcome in cycles:
            resolution = (f"{outcome.kind} at step {outcome.step} "
                          f"({outcome.detail})"
                          if outcome is not None else "in flight")
            lines.append(
                f"    node {detection.node_id} {detection.detail} "
                f"at step {detection.step} -> {resolution}"
            )
    lines.append("")
    lines.append("-- traces --")
    if runtime.tracer is None:
        lines.append("tracing disabled (run without --no-trace)")
    else:
        lines.append(runtime.tracer.summary(limit=trace_limit))
    return "\n".join(lines)

"""Latency/throughput metric collection.

The paper reports latency distributions as candlesticks with the 5th,
25th, 50th, 75th and 95th percentiles; :func:`candlestick` reproduces
exactly that summary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def percentile(samples: list[float], p: float) -> float:
    """Linear-interpolation percentile (p in [0, 100])."""
    if not samples:
        raise ValueError("cannot take a percentile of no samples")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class Candlestick:
    """The paper's five-point latency summary."""

    p5: float
    p25: float
    p50: float
    p75: float
    p95: float

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.p5, self.p25, self.p50, self.p75, self.p95)


def candlestick(samples: list[float]) -> Candlestick:
    """5/25/50/75/95th percentiles of ``samples``."""
    return Candlestick(*(percentile(samples, p)
                         for p in (5, 25, 50, 75, 95)))


@dataclass(frozen=True)
class CheckpointCycle:
    """One checkpoint cycle as seen by the traffic recorder."""

    kind: str        # "full" | "delta"
    entries: float   # logical entries persisted (incl. tombstones)
    bytes: float     # bytes written to the backup store


class CheckpointTraffic:
    """Accumulates per-cycle checkpoint backup traffic.

    The quantity an incremental policy optimises: under full-every-time
    each cycle writes O(|state|); under base+delta most cycles write
    O(|mutations|). :meth:`savings_vs_full` summarises the reduction.
    """

    def __init__(self) -> None:
        self.cycles: list[CheckpointCycle] = []

    def record(self, kind: str, entries: float, bytes_: float) -> None:
        if kind not in ("full", "delta"):
            raise ValueError(f"unknown checkpoint kind {kind!r}")
        self.cycles.append(CheckpointCycle(kind=kind, entries=entries,
                                           bytes=bytes_))

    def __len__(self) -> int:
        return len(self.cycles)

    def full_cycles(self) -> int:
        return sum(1 for c in self.cycles if c.kind == "full")

    def delta_cycles(self) -> int:
        return sum(1 for c in self.cycles if c.kind == "delta")

    def total_bytes(self) -> float:
        return sum(c.bytes for c in self.cycles)

    def total_entries(self) -> float:
        return sum(c.entries for c in self.cycles)

    def delta_chain_bytes(self) -> float:
        """Bytes of the delta tail since the last full base.

        This is what a restore must fold on top of the base — feed it
        to :func:`repro.simulation.recovery_model.recovery_time` as
        ``delta_bytes``.
        """
        tail = 0.0
        for cycle in reversed(self.cycles):
            if cycle.kind == "full":
                break
            tail += cycle.bytes
        return tail

    def savings_vs_full(self, full_bytes: float) -> float:
        """Fraction of backup traffic avoided vs full-every-cycle."""
        if not self.cycles or full_bytes <= 0:
            return 0.0
        baseline = full_bytes * len(self.cycles)
        return 1.0 - self.total_bytes() / baseline


class LatencyRecorder:
    """Accumulates latency samples and summarises them."""

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, latency: float, weight: int = 1) -> None:
        """Record ``weight`` requests that experienced ``latency``."""
        if weight == 1:
            self._samples.append(latency)
        else:
            self._samples.extend([latency] * weight)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def percentile(self, p: float) -> float:
        return percentile(self._samples, p)

    def candlestick(self) -> Candlestick:
        return candlestick(self._samples)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return sum(self._samples) / len(self._samples)

"""Physical TE and SE instances.

A *spec* (``TaskElementSpec``/``StateElementSpec``) is logical; at
deployment the runtime materialises it into one or more instances
(``tˆi,j`` / ``sˆi,j`` in the paper's notation, §3.1-3.2). Instances own
the per-stream bookkeeping that failure recovery relies on: consumer-side
``last_seen`` timestamps for duplicate filtering and producer-side output
buffers for replay (§5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.elements import StateElementSpec, TaskElementSpec
from repro.runtime.envelope import ChannelId, Envelope
from repro.state.base import StateElement

#: Consumer-side stream key: where an item came from, ignoring our own
#: instance index (which may change across recoveries).
StreamKey = tuple[int, str, int]  # (edge_index, src_te, src_instance)


def stream_key(channel: ChannelId) -> StreamKey:
    return (channel.edge_index, channel.src_te, channel.src_instance)


@dataclass
class GatherState:
    """Accumulates responses for one global-access request (§3.2).

    With a certified-foldable merge (``RuntimeConfig(optimize=True)``)
    the barrier folds each replica value into ``accumulator`` as it
    arrives instead of buffering it in ``payloads`` — the merge then
    completes out-of-order with respect to replica delivery, touching
    each value exactly once.
    """

    expected: int
    payloads: list[Any] = field(default_factory=list)
    received: int = 0
    #: Eager-fold accumulator (only used when the merge is foldable).
    accumulator: Any = None
    #: Whether at least one replica value was folded into it.
    folded: bool = False

    @property
    def complete(self) -> bool:
        return self.received >= self.expected


class SEInstance:
    """One physical instance of a state element (a partition or replica)."""

    def __init__(self, spec: StateElementSpec, index: int,
                 element: StateElement | None = None) -> None:
        self.spec = spec
        self.index = index
        self.element = element if element is not None else spec.factory()
        self.node_id: int | None = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def key(self) -> tuple[str, int]:
        return (self.spec.name, self.index)

    def __repr__(self) -> str:
        return f"SEInstance({self.spec.name}[{self.index}] @node{self.node_id})"


class TEInstance:
    """One physical instance of a task element.

    Holds the instance-local runtime state: the inbox of in-flight
    envelopes, consumer-side ``last_seen`` per input stream, producer-side
    output buffers and sequence counters per channel, and (for merge TEs)
    the gather barriers keyed by request id.
    """

    def __init__(self, spec: TaskElementSpec, index: int,
                 se_instance: SEInstance | None = None) -> None:
        self.spec = spec
        self.index = index
        self.se_instance = se_instance
        self.node_id: int | None = None
        self.inbox: deque[Envelope] = deque()
        #: Logical items queued, counting each payload inside a
        #: coalesced :class:`~repro.runtime.envelope.Batch`. Equals
        #: ``len(inbox)`` whenever coalescing is off; the queue-depth
        #: scheduler and backpressure read this so a 50-item batch
        #: weighs 50, not 1.
        self.queued_items = 0
        #: Highest timestamp *processed* per input stream (not delivered:
        #: advancing on delivery would let a crash lose acknowledged items).
        self.last_seen: dict[StreamKey, int] = {}
        #: Producer-side sequence counter per outgoing *edge* (not per
        #: channel): timestamps must be unique within a stream so that a
        #: destination added later (scale-out, m-to-n recovery) never
        #: sees a timestamp that aliases an already-processed one. Each
        #: destination observes an increasing subsequence.
        self.out_seq: dict[int, int] = {}
        #: Producer-side retained envelopes per outgoing channel, replayed
        #: after a downstream failure and trimmed by downstream checkpoints.
        self.output_buffers: dict[ChannelId, deque[Envelope]] = {}
        #: Merge-TE barrier state per in-flight request id.
        self.pending_gathers: dict[int, GatherState] = {}
        self.processed_count = 0
        #: Chaos flag: when set, the next item this instance processes
        #: raises out of the task code (crash-mid-item fault injection).
        #: Deliberately not part of checkpointed bookkeeping.
        self.crash_next = False

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def key(self) -> tuple[str, int]:
        return (self.spec.name, self.index)

    # -- consumer side ---------------------------------------------------

    def is_duplicate(self, envelope: Envelope) -> bool:
        """Whether this envelope was already processed (replay dedup)."""
        return envelope.ts <= self.last_seen.get(stream_key(envelope.channel), 0)

    def mark_processed(self, envelope: Envelope) -> None:
        key = stream_key(envelope.channel)
        if envelope.ts > self.last_seen.get(key, 0):
            self.last_seen[key] = envelope.ts

    # -- producer side ---------------------------------------------------

    def next_seq(self, channel: ChannelId) -> int:
        seq = self.out_seq.get(channel.edge_index, 0) + 1
        self.out_seq[channel.edge_index] = seq
        return seq

    def record_output(self, envelope: Envelope) -> None:
        self.output_buffers.setdefault(envelope.channel, deque()).append(
            envelope
        )

    def trim_output_buffer(self, channel: ChannelId, up_to_ts: int) -> int:
        """Drop buffered envelopes with ``ts <= up_to_ts`` (§5 trimming).

        Returns the number of envelopes dropped.
        """
        buffer = self.output_buffers.get(channel)
        if not buffer:
            return 0
        dropped = 0
        while buffer and buffer[0].ts <= up_to_ts:
            buffer.popleft()
            dropped += 1
        return dropped

    def buffered_output_count(self) -> int:
        return sum(len(b) for b in self.output_buffers.values())

    def __repr__(self) -> str:
        return (
            f"TEInstance({self.spec.name}[{self.index}] @node{self.node_id}"
            f" inbox={len(self.inbox)})"
        )

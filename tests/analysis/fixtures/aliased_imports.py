"""SDG101 via an import alias: ``from time import time as now``.

The §4.1 determinism scan must resolve module-level import aliases —
the call site never mentions ``time``, but recovery replay would still
observe a different clock value than the original execution.
"""

from time import time as now

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class AliasedClock(SDGProgram):
    """Stamps every write with the wall clock, behind an alias."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def stamp(self, key):
        self.table.put(key, now())

"""Tests for the structured event bus."""

import json
import os

import pytest

from repro.obs import EventBus


class TestEventBus:
    def test_publish_orders_and_stamps(self):
        bus = EventBus()
        bus.publish("engine", "node-failed", 10, node_id=3)
        bus.publish("checkpoint", "checkpoint-begin", 12, version=1)
        events = list(bus)
        assert [e.seq for e in events] == [0, 1]
        assert events[0].step == 10
        assert events[0].attrs["node_id"] == 3
        assert len(bus) == 2

    def test_filter_by_source_and_kind(self):
        bus = EventBus()
        bus.publish("engine", "node-failed", 1, node_id=1)
        bus.publish("supervisor", "detected", 2, node_id=1)
        bus.publish("supervisor", "recovered", 3, node_id=1)
        assert len(bus.events(source="supervisor")) == 2
        assert len(bus.events(kind="recovered")) == 1
        assert bus.events(source="engine", kind="recovered") == []

    def test_counts_by_kind(self):
        bus = EventBus()
        bus.publish("a", "x", 1)
        bus.publish("b", "x", 2)
        bus.publish("a", "y", 3)
        assert bus.counts_by_kind() == {"x": 2, "y": 1}

    def test_subscribe_with_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=["restore"])
        bus.publish("recovery", "restore", 5, node_id=1)
        bus.publish("recovery", "checkpoint-begin", 6)
        assert [e.kind for e in seen] == ["restore"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        listener = bus.subscribe(seen.append)
        bus.publish("a", "x", 1)
        bus.unsubscribe(listener)
        bus.publish("a", "y", 2)
        assert [e.kind for e in seen] == ["x"]

    def test_jsonl_round_trips(self):
        bus = EventBus()
        bus.publish("engine", "scale-out", 7, te="count", instances=3)
        bus.publish("injector", "fault-injected", 9,
                    fault=object(), outcome="fired")
        lines = bus.to_jsonl().strip().splitlines()
        first = json.loads(lines[0])
        assert first == {"seq": 0, "step": 7, "source": "engine",
                         "kind": "scale-out", "te": "count",
                         "instances": 3}
        # Non-JSON payloads degrade to repr instead of failing.
        second = json.loads(lines[1])
        assert second["fault"].startswith("<object object")

    def test_empty_bus_exports_empty(self):
        assert EventBus().to_jsonl() == ""


class TestJsonlExporter:
    def fill(self, bus, n, start=0):
        for i in range(start, start + n):
            bus.publish("engine", "tick", i, i=i)

    def test_export_appends_and_reports_offset(self, tmp_path):
        from repro.obs import JsonlExporter

        path = str(tmp_path / "events.jsonl")
        bus = EventBus()
        self.fill(bus, 3)
        exporter = JsonlExporter(path)
        seq, offset = exporter.export(bus)
        assert seq == 3
        assert offset == os.path.getsize(path)
        lines = open(path).read().splitlines()
        assert [json.loads(ln)["seq"] for ln in lines] == [0, 1, 2]
        # A second export only appends the fresh tail.
        self.fill(bus, 2, start=3)
        seq, offset2 = exporter.export(bus)
        assert seq == 5
        assert offset2 > offset
        assert len(open(path).read().splitlines()) == 5

    def test_export_is_idempotent_when_nothing_fresh(self, tmp_path):
        from repro.obs import JsonlExporter

        path = str(tmp_path / "events.jsonl")
        bus = EventBus()
        self.fill(bus, 2)
        exporter = JsonlExporter(path)
        _, offset = exporter.export(bus)
        _, offset_again = exporter.export(bus)
        assert offset_again == offset
        assert len(open(path).read().splitlines()) == 2

    def test_resume_truncates_to_watermark(self, tmp_path):
        """A crash after a partial append must not leak torn lines."""
        from repro.obs import JsonlExporter

        path = str(tmp_path / "events.jsonl")
        bus = EventBus()
        self.fill(bus, 2)
        exporter = JsonlExporter(path)
        _, durable = exporter.export(bus)
        # The dying incarnation appends beyond the fenced watermark.
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 99, "torn":')
        resumed = JsonlExporter(path, start_offset=durable)
        assert os.path.getsize(path) == durable
        assert resumed.byte_offset == durable
        fresh = EventBus()
        self.fill(fresh, 1, start=0)
        resumed.export(fresh)
        lines = open(path).read().splitlines()
        assert len(lines) == 3
        assert all(json.loads(ln) for ln in lines)

    def test_watermark_beyond_file_rejected(self, tmp_path):
        from repro.obs import JsonlExporter

        path = str(tmp_path / "events.jsonl")
        with pytest.raises(ValueError):
            JsonlExporter(path, start_offset=10)

"""Tests for runtime parallelism: scale-up and bottleneck detection."""

from repro.runtime import BottleneckDetector, Runtime, RuntimeConfig

from tests.helpers import build_cf_sdg, build_kv_sdg


class TestPartitionedScaleUp:
    def deploy(self, n=2):
        return Runtime(build_kv_sdg(),
                       RuntimeConfig(se_instances={"table": n},
                                     max_instances=8)).deploy()

    def test_scale_preserves_state(self):
        runtime = self.deploy(2)
        for i in range(50):
            runtime.inject("serve", ("put", f"k{i}", i))
        runtime.run_until_idle()
        assert runtime.scale_up("serve")
        assert len(runtime.se_instances("table")) == 3
        merged = {}
        for inst in runtime.se_instances("table"):
            merged.update(dict(inst.element.items()))
        assert merged == {f"k{i}": i for i in range(50)}

    def test_scale_rebalances_partitions(self):
        runtime = self.deploy(1)
        for i in range(60):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        runtime.scale_up("serve")
        runtime.scale_up("serve")
        sizes = [len(inst.element)
                 for inst in runtime.se_instances("table")]
        assert sum(sizes) == 60
        assert all(size > 0 for size in sizes)

    def test_reads_after_scale_hit_correct_partition(self):
        runtime = self.deploy(2)
        for i in range(30):
            runtime.inject("serve", ("put", f"k{i}", i))
        runtime.run_until_idle()
        runtime.scale_up("serve")
        for i in range(30):
            runtime.inject("serve", ("get", f"k{i}", None))
        runtime.run_until_idle()
        assert sorted(runtime.results["serve"]) == sorted(
            (f"k{i}", i) for i in range(30)
        )

    def test_queued_items_rerouted_on_scale(self):
        runtime = self.deploy(1)
        for i in range(25):
            runtime.inject("serve", ("put", f"k{i}", i))
        # Scale while items are still queued: they must be re-routed to
        # the partition that owns them under the new partitioner.
        runtime.scale_up("serve")
        runtime.run_until_idle()
        partitioner = runtime._partitioners["table"]
        for inst in runtime.se_instances("table"):
            for key in inst.element.keys():
                assert partitioner.partition(key) == inst.index

    def test_max_instances_respected(self):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(se_instances={"table": 2},
                                        max_instances=2)).deploy()
        assert not runtime.scale_up("serve")

    def test_scale_event_recorded(self):
        runtime = self.deploy(1)
        runtime.scale_up("serve")
        assert runtime.scale_events == [(0, "serve", 2)]


class TestPartialScaleUp:
    def test_new_replica_starts_empty_and_serves_reads(self):
        runtime = Runtime(
            build_cf_sdg(),
            RuntimeConfig(se_instances={"userItem": 1, "coOcc": 1}),
        ).deploy()
        ratings = [(0, 0, 5), (0, 1, 3), (1, 0, 4)]
        for rating in ratings:
            runtime.inject("updateUserItem", rating)
        runtime.run_until_idle()
        baseline = None
        runtime.inject("getUserVec", 0)
        runtime.run_until_idle()
        baseline = runtime.results["mergeRec"][-1][1]

        assert runtime.scale_up("updateCoOcc")
        assert len(runtime.se_instances("coOcc")) == 2
        # The new replica is empty; a global read now gathers from both,
        # and the merged sum equals the old single-replica answer.
        runtime.inject("getUserVec", 0)
        runtime.run_until_idle()
        after = runtime.results["mergeRec"][-1][1]
        assert after.to_list() == baseline.to_list()

    def test_scaling_one_te_scales_sibling_accessors(self):
        runtime = Runtime(
            build_cf_sdg(),
            RuntimeConfig(se_instances={"coOcc": 1}),
        ).deploy()
        runtime.scale_up("updateCoOcc")
        # getRecVec accesses the same partial SE, so it must have gained
        # an instance too (global access spans all replicas).
        assert len(runtime.te_instances("getRecVec")) == 2

    def test_merge_te_never_scaled(self):
        runtime = Runtime(build_cf_sdg()).deploy()
        assert not runtime.scale_up("mergeRec")


class TestBottleneckDetector:
    def test_backlogged_te_flagged(self):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(se_instances={"table": 1})).deploy()
        for i in range(200):
            runtime.inject("serve", ("put", i, i))
        detector = BottleneckDetector(threshold=50, max_instances=4)
        assert detector.bottlenecks(runtime) == ["serve"]

    def test_drained_te_not_flagged(self):
        runtime = Runtime(build_kv_sdg()).deploy()
        runtime.inject("serve", ("put", 1, 1))
        runtime.run_until_idle()
        detector = BottleneckDetector(threshold=1)
        assert detector.bottlenecks(runtime) == []

    def test_straggler_instances_reported(self):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(se_instances={"table": 2})).deploy()
        slow_instance = runtime.te_instances("serve")[1]
        runtime.nodes[slow_instance.node_id].speed = 0.4
        detector = BottleneckDetector()
        assert detector.straggling_instances(runtime, "serve") == [1]

    def test_auto_scale_adds_instances_under_load(self):
        runtime = Runtime(
            build_kv_sdg(),
            RuntimeConfig(se_instances={"table": 1}, auto_scale=True,
                          scale_threshold=20, max_instances=4,
                          scale_check_every=50),
        ).deploy()
        for i in range(400):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        assert len(runtime.te_instances("serve")) > 1
        merged = {}
        for inst in runtime.se_instances("table"):
            merged.update(dict(inst.element.items()))
        assert merged == {i: i for i in range(400)}

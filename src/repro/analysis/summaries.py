"""Per-function summaries, computed to fixpoint over call-graph SCCs.

A :class:`MethodSummary` is the interprocedural contract of one
function: what the §4.1 restriction scan would find anywhere beneath
it (with the call chain that reaches each site), which parameters it
journal-bypasses, mutates, or flows into its return value, and which
module globals / shared class attributes it writes. The passes consume
summaries instead of re-walking callee bodies:

* SDG101/SDG102 report violations *transitively reachable* from an
  entry, rendering the full call chain;
* SDG303 catches a journal bypass inside a helper that received the
  state element as an argument;
* SDG301 taint propagates through helpers that mutate their
  parameters (``self._stash(out, seen)`` taints ``out`` when ``seen``
  is replica-derived);
* SDG403 reports class-attribute/global writes wherever they hide.

Summaries are computed callees-first over the condensation of the
call graph; members of a strongly connected component (recursion,
mutual recursion) are iterated together until nothing changes.
Propagated facts are deduplicated by their *raw site*, not their
chain, so a recursive cycle contributes each site once with the first
chain that reached it — the fixpoint terminates on any input.

Unknown call targets degrade to :data:`OPAQUE_SUMMARY`: no effects,
no parameter mutation, but full param→return taint — exactly the
assumption the intra-procedural passes have always made about calls
they could not see through, so opacity never *removes* a finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

from repro.analysis.callgraph import CallGraph, CallSite
from repro.analysis.model import WRITE_METHODS
from repro.translate.restrictions import restriction_sites

#: Attribute names on a state element that reach journal-bypassing
#: internals (mirrors the SDG303 scan in ``analysis.checkpoints``).
_BYPASS_ATTR = "backend"


@dataclass(frozen=True)
class ChainHop:
    """One frame of a call chain: ``fn`` entered from a call at
    ``lineno`` (class-relative) in the previous frame."""

    fn: str
    lineno: int | None


@dataclass(frozen=True)
class EffectSite:
    """One effect a function (transitively) performs.

    ``kind``: ``"nondet"`` / ``"env"`` (restriction sites),
    ``"bypass"`` (journal bypass), ``"global-write"`` (module global or
    shared class attribute mutated). ``chain`` holds the hops *below*
    the summary's owner down to ``origin``; an empty chain is a direct
    site in the owner itself.
    """

    kind: str
    detail: str
    origin: str
    lineno: int
    col: int
    chain: tuple[ChainHop, ...] = ()

    @property
    def site_key(self) -> tuple:
        """Identity of the raw site, chain-independent (dedup key)."""
        return (self.kind, self.detail, self.origin, self.lineno)


@dataclass
class MethodSummary:
    """The interprocedural facts of one function."""

    name: str
    #: True for the conservative stand-in of an unknown callee.
    opaque: bool = False
    #: Restriction violations reachable from this function.
    effects: tuple[EffectSite, ...] = ()
    #: Param index (0-based, ``self`` excluded) → journal-bypass site
    #: reached when the state element arrives through that parameter.
    param_bypass: dict[int, EffectSite] = field(default_factory=dict)
    #: Param indices that (may) flow into the return value.
    taints_return: frozenset = frozenset()
    #: Param indices the function (may) mutate in place.
    mutated_params: frozenset = frozenset()
    #: Module-global / class-attribute writes reachable from here.
    global_writes: tuple[EffectSite, ...] = ()

    def facts_key(self) -> tuple:
        """Comparable digest of the summary, for fixpoint convergence."""
        return (
            frozenset(e.site_key for e in self.effects),
            frozenset(self.param_bypass),
            self.taints_return,
            self.mutated_params,
            frozenset(e.site_key for e in self.global_writes),
        )


#: What an unresolvable callee is assumed to do: taint its return from
#: every argument (matching the generic assignment-taint the passes
#: always applied), and nothing else. ``ALL_PARAMS`` is a sentinel the
#: consumers treat as "every index".
ALL_PARAMS = frozenset({-1})

OPAQUE_SUMMARY = MethodSummary(
    name="<opaque>", opaque=True, taints_return=ALL_PARAMS,
)


def _param_names(fn: ast.FunctionDef, kind: str) -> list[str]:
    names = [arg.arg for arg in fn.args.args]
    if kind == "method" and names and names[0] == "self":
        return names[1:]
    return names


def _bypass_exprs(fn: ast.FunctionDef,
                  params: list[str]) -> list[tuple[int, ast.Attribute]]:
    """``(param index, node)`` for each journal-bypassing attribute
    rooted at a parameter (``se._backend``, ``se.backend``)."""
    hits = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Attribute):
            continue
        if not (isinstance(node.value, ast.Name)
                and node.value.id in params):
            continue
        if node.attr.startswith("_") or node.attr == _BYPASS_ATTR:
            hits.append((params.index(node.value.id), node))
    return hits


def _global_write_sites(fn: ast.FunctionDef, origin: str,
                        class_name: str) -> list[EffectSite]:
    """Writes to module globals (``global x; x = ...``) and shared
    class attributes (``self.__class__.attr = ...`` /
    ``ClassName.attr = ...``), the state that silently diverges across
    forked workers."""
    declared_global: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    sites: list[EffectSite] = []

    def class_attr(node: ast.expr) -> str | None:
        if not isinstance(node, ast.Attribute):
            return None
        owner = node.value
        if (
            isinstance(owner, ast.Attribute)
            and owner.attr == "__class__"
            and isinstance(owner.value, ast.Name)
            and owner.value.id == "self"
        ):
            return f"{class_name}.{node.attr}"
        if isinstance(owner, ast.Name) and owner.id == class_name:
            return f"{class_name}.{node.attr}"
        return None

    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (isinstance(target, ast.Name)
                    and target.id in declared_global):
                sites.append(EffectSite(
                    kind="global-write", detail=target.id,
                    origin=origin, lineno=node.lineno,
                    col=node.col_offset,
                ))
            attr = class_attr(target)
            if attr is not None:
                sites.append(EffectSite(
                    kind="global-write", detail=attr,
                    origin=origin, lineno=node.lineno,
                    col=node.col_offset,
                ))
    return sites


def _direct_mutations(fn: ast.FunctionDef,
                      params: list[str]) -> set[int]:
    """Param indices mutated in the function's own body: subscript or
    attribute stores rooted at the parameter, or journalled mutator
    calls (``p.append(...)``, ``p.put(...)``) on it."""
    mutated: set[int] = set()

    def root_param(node: ast.expr) -> int | None:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name) and node.id in params:
            return params.index(node.id)
        return None

    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                index = root_param(target)
                if index is not None:
                    mutated.add(index)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in params
            and node.func.attr in WRITE_METHODS
        ):
            mutated.add(params.index(node.func.value.id))
    return mutated


def _return_taint(fn: ast.FunctionDef, params: list[str]) -> frozenset:
    """Param indices whose value may reach a ``return`` expression.

    Flow-insensitive closure over simple assignments: good enough for
    helper bodies, conservative for everything else.
    """
    from repro.translate.liveness import uses_defs

    taint: dict[str, set[int]] = {
        name: {index} for index, name in enumerate(params)
    }
    for _ in range(2):  # two rounds close loops in straight-line bodies
        for stmt in fn.body:
            stmt_uses, stmt_defs = uses_defs(stmt)
            flowing: set[int] = set()
            for name in stmt_uses:
                flowing.update(taint.get(name, ()))
            if not flowing:
                continue
            for name in stmt_defs:
                taint.setdefault(name, set()).update(flowing)
    result: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            for name_node in ast.walk(node.value):
                if isinstance(name_node, ast.Name) and isinstance(
                    name_node.ctx, ast.Load
                ):
                    result.update(taint.get(name_node.id, ()))
    return frozenset(result)


def _arg_param_index(arg: ast.expr, params: list[str]) -> int | None:
    """The caller's param index an argument forwards, if it is a bare
    parameter name."""
    if isinstance(arg, ast.Name) and arg.id in params:
        return params.index(arg.id)
    return None


class ProgramSummaries:
    """All function summaries of one program, plus their call graph."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: dict[str, MethodSummary] = {}
        self._compute()

    def get(self, name: str) -> MethodSummary:
        """The summary of ``name``; unknown names are opaque."""
        return self.summaries.get(name, OPAQUE_SUMMARY)

    def for_callee(self, site: CallSite) -> MethodSummary:
        return self.get(site.callee)

    # -- construction ----------------------------------------------------

    def _compute(self) -> None:
        for component in self.graph.sccs():
            for name in component:
                self.summaries[name] = self._base_summary(name)
            # Iterate the component to fixpoint: facts only grow and
            # are deduplicated by raw site, so this terminates.
            changed = True
            while changed:
                changed = False
                for name in component:
                    updated = self._with_callees(name)
                    if (updated.facts_key()
                            != self.summaries[name].facts_key()):
                        self.summaries[name] = updated
                        changed = True
                    else:
                        self.summaries[name] = updated

    def _base_summary(self, name: str) -> MethodSummary:
        node = self.graph.nodes[name]
        params = _param_names(node.fn_ast, node.kind)
        effects = tuple(
            EffectSite(kind=site.kind, detail=site.detail, origin=name,
                       lineno=site.lineno, col=site.col)
            for site in restriction_sites(node.fn_ast,
                                          self.graph.aliases)
        )
        param_bypass = {
            index: EffectSite(
                kind="bypass", detail=ast.unparse(expr), origin=name,
                lineno=expr.lineno, col=expr.col_offset,
            )
            for index, expr in _bypass_exprs(node.fn_ast, params)
        }
        return MethodSummary(
            name=name,
            effects=effects,
            param_bypass=param_bypass,
            taints_return=_return_taint(node.fn_ast, params),
            mutated_params=frozenset(
                _direct_mutations(node.fn_ast, params)
            ),
            global_writes=tuple(_global_write_sites(
                node.fn_ast, name, self.graph.class_name
            )),
        )

    def _with_callees(self, name: str) -> MethodSummary:
        base = self._base_summary(name)
        node = self.graph.nodes[name]
        params = _param_names(node.fn_ast, node.kind)

        effects: dict[tuple, EffectSite] = {
            e.site_key: e for e in base.effects
        }
        global_writes: dict[tuple, EffectSite] = {
            e.site_key: e for e in base.global_writes
        }
        param_bypass = dict(base.param_bypass)
        mutated = set(base.mutated_params)

        # Map call sites back to their argument expressions so the
        # parameter-sensitive facts can be forwarded.
        calls_by_key: dict[tuple[int, int], ast.Call] = {}
        for call in ast.walk(node.fn_ast):
            if isinstance(call, ast.Call):
                calls_by_key.setdefault(
                    (call.lineno, call.col_offset), call
                )

        for site in self.graph.callees(name):
            callee = self.get(site.callee)
            hop = ChainHop(fn=site.callee, lineno=site.lineno)
            for effect in callee.effects:
                key = effect.site_key
                if key not in effects:
                    effects[key] = replace(
                        effect, chain=(hop,) + effect.chain
                    )
            for effect in callee.global_writes:
                key = effect.site_key
                if key not in global_writes:
                    global_writes[key] = replace(
                        effect, chain=(hop,) + effect.chain
                    )
            call_node = calls_by_key.get((site.lineno, site.col))
            if call_node is None:
                continue
            for position, arg in enumerate(call_node.args):
                forwarded = _arg_param_index(arg, params)
                if forwarded is None:
                    continue
                bypass = callee.param_bypass.get(position)
                if bypass is not None and forwarded not in param_bypass:
                    param_bypass[forwarded] = replace(
                        bypass, chain=(hop,) + bypass.chain
                    )
                if position in callee.mutated_params:
                    mutated.add(forwarded)

        return MethodSummary(
            name=name,
            effects=tuple(effects.values()),
            param_bypass=param_bypass,
            taints_return=base.taints_return,
            mutated_params=frozenset(mutated),
            global_writes=tuple(global_writes.values()),
        )


def compute_summaries(graph: CallGraph) -> ProgramSummaries:
    """Summaries for every node of ``graph``, callees-first."""
    return ProgramSummaries(graph)

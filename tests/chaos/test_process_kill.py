"""Process-kill soak: SIGKILL the whole run, resume, converge.

This is the durability acceptance test. A durable run executes in a
real subprocess (``python -m repro run --durable ...``); the parent
polls the manifest and, once a target epoch is fenced, SIGKILLs the
subprocess mid-epoch (the run's ``--throttle`` holds each epoch open so
the kill lands between drain and commit). The run is then resumed —
possibly killed again — until it completes, and the final state hash
must be byte-identical to an uninterrupted in-process run with the same
spec, seeds and fault plan.

The unmarked test kills once and keeps CI fast; the ``chaos``-marked
soak kills the process in three consecutive epochs and also layers a
node-kill fault plan under the process kills.
"""

import json
import os
import shutil
import subprocess
import sys
import time

import pytest

from repro.chaos import FaultPlan, KillNode
from repro.durability import DurableRunner, RunSpec, load_manifest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: Seconds the subprocess holds each epoch open before the fence.
THROTTLE = 0.4
#: Overall per-subprocess watchdog.
DEADLINE = 120.0


def spawn(run_dir, spec, chaos_seed=None, resume=False):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    if resume:
        argv = [sys.executable, "-m", "repro", "resume", run_dir]
    else:
        argv = [
            sys.executable, "-m", "repro", "run", "--durable", run_dir,
            "--app", spec.app, "--epochs", str(spec.epochs),
            "--items-per-epoch", str(spec.items_per_epoch),
            "--seed", str(spec.seed),
            "--full-every", str(spec.full_every),
            "--throttle", str(spec.throttle),
        ]
        if chaos_seed is not None:
            argv += ["--chaos-seed", str(chaos_seed)]
    return subprocess.Popen(argv, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def committed_epoch(run_dir):
    try:
        return load_manifest(run_dir).committed_epoch
    except Exception:
        return -1  # manifest not there yet


def kill_after_epoch(proc, run_dir, epoch):
    """SIGKILL ``proc`` once the manifest fences ``epoch``.

    Waiting for the fence and then sleeping a fraction of the throttle
    puts the kill at an uncontrolled point *inside* the next epoch —
    anywhere between injection and the commit syscall.
    """
    deadline = time.monotonic() + DEADLINE
    while committed_epoch(run_dir) < epoch:
        if proc.poll() is not None:
            raise AssertionError(
                f"subprocess exited (rc={proc.returncode}) before "
                f"fencing epoch {epoch}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError(f"epoch {epoch} not fenced in time")
        time.sleep(0.02)
    time.sleep(THROTTLE / 3)
    proc.kill()
    proc.wait()


def finish(run_dir):
    """Resume (repeatedly, defensively) until the run completes."""
    spec = RunSpec.from_dict(load_manifest(run_dir).spec)
    for _ in range(spec.epochs + 2):
        proc = spawn(run_dir, spec, resume=True)
        try:
            proc.wait(timeout=DEADLINE)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise
        if committed_epoch(run_dir) >= spec.epochs:
            return
    raise AssertionError("run never completed across resumes")


def final_hash(run_dir):
    manifest = load_manifest(run_dir)
    assert manifest.committed_epoch == manifest.spec["epochs"]
    return manifest.latest.state_hash


def save_artifacts(run_dir):
    """Copy the final manifest + event log for CI upload, if asked."""
    out = os.environ.get("DURABILITY_ARTIFACT_DIR")
    if not out:
        return
    os.makedirs(out, exist_ok=True)
    for name in ("manifest.json", "events.jsonl"):
        src = os.path.join(run_dir, name)
        if os.path.exists(src):
            shutil.copy2(src, os.path.join(out, name))


def no_throttle(spec):
    record = spec.to_dict()
    record["throttle"] = 0.0
    return RunSpec.from_dict(record)


def test_sigkill_once_resumes_to_identical_state(tmp_path):
    spec = RunSpec(app="kvstore", seed=7, epochs=3, items_per_epoch=60,
                   throttle=THROTTLE)
    ref = DurableRunner.start(str(tmp_path / "ref"), no_throttle(spec))
    ref.run()

    run_dir = str(tmp_path / "run")
    proc = spawn(run_dir, spec)
    kill_after_epoch(proc, run_dir, 1)
    assert committed_epoch(run_dir) >= 1
    finish(run_dir)
    assert final_hash(run_dir) == ref.state_hash()
    save_artifacts(run_dir)


@pytest.mark.chaos
def test_sigkill_soak_three_epochs_with_node_kills(tmp_path):
    """Kill the process in >= 3 consecutive epochs, under chaos."""
    spec = RunSpec(app="kvstore", seed=11, epochs=5,
                   items_per_epoch=60, throttle=THROTTLE)
    plan = FaultPlan(
        faults=[KillNode(at_step=50, se="table", index=0),
                KillNode(at_step=220, se="table", index=1),
                KillNode(at_step=400, se="table", index=0)],
        seed=3)
    ref = DurableRunner.start(str(tmp_path / "ref"), no_throttle(spec),
                              plan=plan)
    ref.run()

    run_dir = str(tmp_path / "run")
    manifest = json.loads(json.dumps(plan.to_dict()))  # sanity: JSON-safe
    assert manifest["faults"]
    runner = DurableRunner.start(run_dir, spec, plan=plan)
    del runner  # manifest written; the subprocess takes over via resume

    kills = 0
    for epoch in (1, 2, 3):
        proc = spawn(run_dir, spec, resume=True)
        kill_after_epoch(proc, run_dir, epoch)
        kills += 1
        assert committed_epoch(run_dir) >= epoch
    assert kills >= 3
    finish(run_dir)
    assert final_hash(run_dir) == ref.state_hash()
    save_artifacts(run_dir)


@pytest.mark.chaos
def test_sigkill_soak_wordcount(tmp_path):
    spec = RunSpec(app="wordcount", seed=5, epochs=4,
                   items_per_epoch=50, throttle=THROTTLE)
    ref = DurableRunner.start(str(tmp_path / "ref"), no_throttle(spec))
    ref.run()

    run_dir = str(tmp_path / "run")
    proc = spawn(run_dir, spec)
    kill_after_epoch(proc, run_dir, 1)
    proc2 = spawn(run_dir, spec, resume=True)
    kill_after_epoch(proc2, run_dir, 2)
    finish(run_dir)
    assert final_hash(run_dir) == ref.state_hash()

"""The fault injector: executes a fault plan against a live runtime.

The :class:`FaultInjector` rides the engine's step hook, the same
mechanism that drives checkpoint scheduling and failure detection, so
faults land at exact logical steps and every run of (workload, plan,
seed) is bit-for-bit reproducible.

Faults are resolved at fire time: a plan says "kill the node hosting
partition 2 of ``table``", and the injector looks up whichever node
that is *now* — including replacement nodes installed by recovery.
Every action (or deliberate skip) is published to the runtime's event
bus (``runtime.events``, source ``"injector"``, kind
``"fault-injected"``); :attr:`injected` remains as a backward-
compatible view reconstructing :class:`InjectionRecord` entries from
the bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.chaos.plan import (
    CorruptChunk,
    CorruptDeltaChunk,
    CrashTask,
    DropDeltaChunk,
    DropEnvelope,
    DuplicateEnvelope,
    FaultPlan,
    KillNode,
    ScaleUp,
    SlowNode,
    TargetOffline,
)
from repro.errors import ChaosError, RuntimeExecutionError
from repro.runtime.envelope import envelope_weight

if TYPE_CHECKING:  # pragma: no cover
    from repro.recovery.backup import BackupStore
    from repro.runtime.engine import Runtime
    from repro.runtime.instances import TEInstance
    from repro.runtime.node import PhysicalNode

#: How many steps a refused ScaleUp waits before retrying, and how
#: often, before the injector gives up on it.
_SCALE_RETRY_AFTER = 5
_SCALE_MAX_RETRIES = 100


@dataclass(frozen=True)
class InjectionRecord:
    """One executed (or skipped) fault, as it actually landed."""

    step: int
    fault: object
    outcome: str  # fired | skipped | refused | rescheduled
    detail: str = ""


class FaultInjector:
    """Executes a :class:`~repro.chaos.plan.FaultPlan` via step hooks."""

    def __init__(self, runtime: "Runtime", plan: FaultPlan,
                 store: "BackupStore | None" = None) -> None:
        needs_store = (CorruptChunk, CorruptDeltaChunk, DropDeltaChunk,
                       TargetOffline)
        if store is None and any(isinstance(f, needs_store) for f in plan):
            raise ChaosError(
                "plan contains backup-store faults (CorruptChunk / "
                "CorruptDeltaChunk / DropDeltaChunk / TargetOffline) but "
                "no store was given to the injector"
            )
        self.runtime = runtime
        self.plan = plan
        self.store = store
        self._pending: list[tuple[int, object]] = [
            (fault.at_step, fault) for fault in plan
        ]
        self._scale_retries: dict[int, int] = {}
        self._installed = False
        self._c_armed = runtime.metrics.counter(
            "chaos_faults_armed_total",
            "faults armed at injector install, by fault type")
        self._c_fired = runtime.metrics.counter(
            "chaos_faults_fired_total",
            "faults that actually landed, by fault type")

    @property
    def injected(self) -> list[InjectionRecord]:
        """Everything the injector did, reconstructed from the event bus.

        Deprecated as a *private* log: actions are now published to
        ``runtime.events`` with source ``"injector"`` (one injector per
        runtime is the supported pattern); this property remains as a
        compatible read view.
        """
        return [
            InjectionRecord(
                step=e.step, fault=e.attrs.get("fault"),
                outcome=e.attrs.get("outcome", ""),
                detail=e.attrs.get("detail", ""),
            )
            for e in self.runtime.events.events(source="injector")
        ]

    # ------------------------------------------------------------------

    def install(self) -> "FaultInjector":
        if self._installed:
            return self
        for fault in self.plan:
            self._c_armed.labels(type=type(fault).__name__).inc()
        self.runtime.add_step_hook(self._on_step)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.runtime.remove_step_hook(self._on_step)
            self._installed = False

    @property
    def done(self) -> bool:
        """Every planned fault has fired, been skipped, or given up."""
        return not self._pending

    def pending_faults(self) -> list:
        """Faults not yet executed, in due order.

        Durable runs serialise these into the run manifest at each epoch
        commit so a resumed process re-arms exactly the faults the
        crashed incarnation still owed.
        """
        return [fault for _step, fault in
                sorted(self._pending, key=lambda pair: pair[0])]

    def fired(self, outcome: str = "fired") -> list[InjectionRecord]:
        return [r for r in self.injected if r.outcome == outcome]

    # ------------------------------------------------------------------

    def _on_step(self, runtime: "Runtime") -> None:
        now = runtime.total_steps
        due = [(step, f) for step, f in self._pending if step <= now]
        if not due:
            return
        self._pending = [(s, f) for s, f in self._pending if s > now]
        for _step, fault in due:
            self._fire(fault)

    def _log(self, fault: object, outcome: str, detail: str = "") -> None:
        if outcome == "fired":
            self._c_fired.labels(type=type(fault).__name__).inc()
        self.runtime.events.publish(
            "injector", "fault-injected", self.runtime.total_steps,
            fault=fault, outcome=outcome, detail=detail,
        )

    def _fire(self, fault: object) -> None:
        if isinstance(fault, KillNode):
            self._fire_kill(fault)
        elif isinstance(fault, CrashTask):
            self._fire_crash(fault)
        elif isinstance(fault, SlowNode):
            self._fire_slow(fault)
        elif isinstance(fault, DropEnvelope):
            self._fire_drop(fault)
        elif isinstance(fault, DuplicateEnvelope):
            self._fire_duplicate(fault)
        elif isinstance(fault, CorruptChunk):
            key = self.store.corrupt_chunk(fault.node_id)
            if key is None:
                self._log(fault, "skipped", "no stored chunk to corrupt")
            else:
                self._log(fault, "fired", f"corrupted chunk {key}")
        elif isinstance(fault, CorruptDeltaChunk):
            key = self.store.corrupt_chunk(fault.node_id, kind="delta")
            if key is None:
                self._log(fault, "skipped",
                          "no stored delta chunk to corrupt")
            else:
                self._log(fault, "fired", f"corrupted delta chunk {key}")
        elif isinstance(fault, DropDeltaChunk):
            key = self.store.drop_chunk(fault.node_id, kind="delta")
            if key is None:
                self._log(fault, "skipped", "no stored delta chunk to drop")
            else:
                self._log(fault, "fired", f"dropped delta chunk {key}")
        elif isinstance(fault, TargetOffline):
            self.store.set_target_offline(fault.target, fault.offline)
            state = "offline" if fault.offline else "online"
            self._log(fault, "fired", f"backup target {fault.target} "
                                      f"now {state}")
        elif isinstance(fault, ScaleUp):
            self._fire_scale(fault)
        else:
            raise ChaosError(f"unknown fault type: {fault!r}")

    # -- individual faults ----------------------------------------------

    def _node_for(self, fault) -> "PhysicalNode | None":
        """Resolve a node selector against the current topology."""
        if fault.node_id is not None:
            node = self.runtime.nodes.get(fault.node_id)
            return node if node is not None and node.alive else None
        live = self.runtime.se_instances(fault.se)
        if not live:
            return None
        instance = live[fault.index % len(live)]
        node = self.runtime.nodes[instance.node_id]
        return node if node.alive else None

    def _te_for(self, fault, *, with_inbox: bool) -> "TEInstance | None":
        live = self.runtime.te_instances(fault.te)
        live = [i for i in live if self.runtime.nodes[i.node_id].alive]
        if with_inbox:
            live = [i for i in live if i.inbox]
        if not live:
            return None
        return live[fault.index % len(live)]

    def _fire_kill(self, fault: KillNode) -> None:
        node = self._node_for(fault)
        if node is None:
            self._log(fault, "skipped", "no live node matches selector")
            return
        self.runtime.fail_node(node.node_id)
        self._log(fault, "fired", f"killed node {node.node_id}")

    def _fire_crash(self, fault: CrashTask) -> None:
        instance = self._te_for(fault, with_inbox=False)
        if instance is None:
            self._log(fault, "skipped",
                      f"no live instance of TE {fault.te!r}")
            return
        instance.crash_next = True
        self._log(fault, "fired",
                  f"armed crash on {fault.te}[{instance.index}] "
                  f"(node {instance.node_id})")

    def _fire_slow(self, fault: SlowNode) -> None:
        node = self._node_for(fault)
        if node is None:
            self._log(fault, "skipped", "no live node matches selector")
            return
        node.speed = fault.factor
        self._log(fault, "fired",
                  f"node {node.node_id} speed -> {fault.factor}")

    def _fire_drop(self, fault: DropEnvelope) -> None:
        """Lose one queued envelope *and* fail its destination node.

        The two go together by design (see
        :class:`~repro.chaos.plan.DropEnvelope`): the channels are
        reliable, so a lost item without a node failure would be
        unrecoverable. Failing the destination makes the loss part of a
        crash, and failure replay from the producer-side buffer — where
        the dropped envelope still lives — resurrects it.
        """
        instance = self._te_for(fault, with_inbox=True)
        if instance is None:
            self._log(fault, "skipped",
                      f"no queued envelope on TE {fault.te!r}")
            return
        envelope = instance.inbox.pop()
        instance.queued_items -= envelope_weight(envelope)
        self.runtime.transport.inbox_gauge(instance.name).dec()
        self.runtime.fail_node(instance.node_id)
        self._log(fault, "fired",
                  f"dropped ts={envelope.ts} bound for "
                  f"{fault.te}[{instance.index}] and killed node "
                  f"{instance.node_id}")

    def _fire_duplicate(self, fault: DuplicateEnvelope) -> None:
        instance = self._te_for(fault, with_inbox=True)
        if instance is None:
            self._log(fault, "skipped",
                      f"no queued envelope on TE {fault.te!r}")
            return
        envelope = instance.inbox[0]
        instance.inbox.append(envelope)
        instance.queued_items += envelope_weight(envelope)
        self.runtime.transport.inbox_gauge(instance.name).inc()
        self._log(fault, "fired",
                  f"redelivered ts={envelope.ts} to "
                  f"{fault.te}[{instance.index}]")

    def _fire_scale(self, fault: ScaleUp) -> None:
        try:
            grew = self.runtime.scale_up(fault.te)
        except RuntimeExecutionError as exc:
            # Mid-checkpoint or a failed instance pending recovery:
            # retry a little later, bounded.
            retries = self._scale_retries.get(id(fault), 0) + 1
            if retries > _SCALE_MAX_RETRIES:
                self._log(fault, "refused",
                          f"gave up after {retries - 1} retries: {exc}")
                return
            self._scale_retries[id(fault)] = retries
            due = self.runtime.total_steps + _SCALE_RETRY_AFTER
            self._pending.append((due, fault))
            self._log(fault, "rescheduled", f"retry at step {due}: {exc}")
            return
        if grew:
            self._log(fault, "fired",
                      f"scaled {fault.te} to "
                      f"{self.runtime.te_slot_count(fault.te)} instances")
        else:
            self._log(fault, "refused",
                      f"{fault.te} cannot scale further")

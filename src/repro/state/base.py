"""Base protocol for state elements (SEs).

A state element encapsulates the mutable state of an SDG computation
(§3.1). Every predefined SE routes its mutations through a small
key/value core provided here, which gives all of them, uniformly:

* the **dirty-state checkpoint protocol** of §5 — ``begin_checkpoint``
  freezes the main structure, subsequent writes land in a
  :class:`~repro.state.dirty.DirtyOverlay`, a consistent snapshot is read
  with :meth:`snapshot_items`, and ``consolidate`` folds the overlay back;
* **dynamic partitioning** — ``extract_partition`` / ``merge_partitions``
  split and re-join SE instances for partitioned state and for restoring a
  failed instance onto *n* new nodes;
* **chunked serialisation** — ``to_chunks`` / ``load_chunk`` implement the
  m-to-n backup pattern of Fig. 4;
* **size accounting** — a byte estimate used by the allocation logic and
  by the cluster simulator's checkpoint cost model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, Sequence

from repro.errors import StateError
from repro.state.dirty import DirtyOverlay, TOMBSTONE

#: Sentinel distinguishing "no default supplied" from ``default=None``.
_MISSING = object()


@dataclass(frozen=True)
class StateChunk:
    """One fragment of a serialised SE checkpoint.

    Checkpoints are hash-partitioned into chunks so that they can be
    streamed to ``total`` backup nodes in parallel and later restored to
    any number of recovering instances (Fig. 4, steps B1-B3 / R1-R2).
    """

    index: int
    total: int
    items: tuple[tuple[Hashable, Any], ...]
    meta: dict[str, Any] = field(default_factory=dict)

    def size_bytes(self, bytes_per_entry: int) -> int:
        """Modelled size of this chunk on disk or on the wire."""
        return len(self.items) * bytes_per_entry


class StateElement(abc.ABC):
    """Abstract base class for all SE data structures.

    Subclasses implement the ``_store_*`` hooks against their concrete
    representation and expose a domain API (``get_row``, ``multiply``,
    ``put`` ...) built on the protected ``_get``/``_set``/``_delete``
    helpers, which transparently apply the dirty-state redirection.
    """

    #: Modelled cost of one stored entry; used for state-size accounting.
    BYTES_PER_ENTRY = 64

    def __init__(self) -> None:
        self._dirty: DirtyOverlay | None = None
        self._update_count = 0

    # ------------------------------------------------------------------
    # Storage hooks (subclass responsibility)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _store_get(self, key: Hashable) -> Any:
        """Return the value for ``key`` from the main structure.

        Must raise :class:`KeyError` when absent.
        """

    @abc.abstractmethod
    def _store_set(self, key: Hashable, value: Any) -> None:
        """Write ``value`` for ``key`` into the main structure."""

    @abc.abstractmethod
    def _store_delete(self, key: Hashable) -> None:
        """Remove ``key`` from the main structure (KeyError if absent)."""

    @abc.abstractmethod
    def _store_items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate over all ``(key, value)`` pairs of the main structure."""

    @abc.abstractmethod
    def _store_clear(self) -> None:
        """Empty the main structure."""

    @abc.abstractmethod
    def spawn_empty(self) -> "StateElement":
        """Return a new, empty SE with the same shape/configuration.

        Used when creating additional partial instances at runtime (§3.3)
        and when restoring a checkpoint onto fresh nodes.
        """

    # ------------------------------------------------------------------
    # Dirty-state aware access helpers
    # ------------------------------------------------------------------

    @property
    def checkpoint_active(self) -> bool:
        """Whether a checkpoint is in progress (writes go to dirty state)."""
        return self._dirty is not None

    @property
    def update_count(self) -> int:
        """Total number of mutations applied to this SE instance."""
        return self._update_count

    @property
    def dirty_size(self) -> int:
        """Number of entries currently buffered in the dirty overlay."""
        return 0 if self._dirty is None else len(self._dirty)

    def _get(self, key: Hashable, default: Any = _MISSING) -> Any:
        """Read ``key``, consulting the dirty overlay first (§5 step 2)."""
        if self._dirty is not None and key in self._dirty:
            value = self._dirty.get(key)
            if value is TOMBSTONE:
                if default is _MISSING:
                    raise KeyError(key)
                return default
            return value
        try:
            return self._store_get(key)
        except KeyError:
            if default is _MISSING:
                raise
            return default

    def _set(self, key: Hashable, value: Any) -> None:
        """Write ``key``; redirected to the dirty overlay mid-checkpoint."""
        self._update_count += 1
        if self._dirty is not None:
            self._dirty.set(key, value)
        else:
            self._store_set(key, value)

    def _delete(self, key: Hashable) -> None:
        """Delete ``key``; recorded as a tombstone mid-checkpoint."""
        self._update_count += 1
        if self._dirty is not None:
            if key not in self._dirty and not self._store_contains(key):
                raise KeyError(key)
            if key in self._dirty and self._dirty.get(key) is TOMBSTONE:
                raise KeyError(key)
            self._dirty.delete(key)
        else:
            self._store_delete(key)

    def _contains(self, key: Hashable) -> bool:
        if self._dirty is not None and key in self._dirty:
            return self._dirty.get(key) is not TOMBSTONE
        return self._store_contains(key)

    def _store_contains(self, key: Hashable) -> bool:
        """Membership against the main structure only.

        Subclasses with a cheaper test than get-and-catch may override.
        """
        try:
            self._store_get(key)
        except KeyError:
            return False
        return True

    def _iter_items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate the *logical* contents: main structure + overlay."""
        if self._dirty is None:
            yield from self._store_items()
            return
        dirty = self._dirty
        seen = set()
        for key, value in self._store_items():
            seen.add(key)
            if key in dirty:
                overlaid = dirty.get(key)
                if overlaid is not TOMBSTONE:
                    yield key, overlaid
            else:
                yield key, value
        for key, value in dirty.items():
            if key not in seen and value is not TOMBSTONE:
                yield key, value

    # ------------------------------------------------------------------
    # Checkpoint protocol (§5)
    # ------------------------------------------------------------------

    def begin_checkpoint(self) -> None:
        """Flag the SE as dirty: freeze the main structure (step 1).

        After this call, the main structure is immutable and
        :meth:`snapshot_items` may be read concurrently with processing.
        """
        if self._dirty is not None:
            raise StateError("checkpoint already in progress for this SE")
        self._dirty = DirtyOverlay()

    def snapshot_items(self) -> list[tuple[Hashable, Any]]:
        """Materialise the consistent (pre-checkpoint) contents (step 3).

        Only meaningful while a checkpoint is active; calling it otherwise
        returns the current contents, which is still a consistent view.
        """
        return list(self._store_items())

    def consolidate(self) -> int:
        """Fold the dirty overlay back into the main structure (step 5).

        This is the only phase that requires exclusive access to the SE,
        so its cost is proportional to the number of updates made during
        the checkpoint, not to the state size. Returns the number of
        overlay entries applied.
        """
        if self._dirty is None:
            raise StateError("no checkpoint in progress to consolidate")
        applied = 0
        for key, value in self._dirty.items():
            if value is TOMBSTONE:
                try:
                    self._store_delete(key)
                except KeyError:
                    pass
            else:
                self._store_set(key, value)
            applied += 1
        self._dirty = None
        return applied

    def abort_checkpoint(self) -> None:
        """Consolidate-and-discard used when a checkpoint fails midway."""
        if self._dirty is None:
            return
        self.consolidate()

    # ------------------------------------------------------------------
    # Partitioning and merging (§3.2)
    # ------------------------------------------------------------------

    def partition_key(self, key: Hashable) -> Hashable:
        """Map a storage key to the key used for partitioning decisions.

        A matrix partitioned by row maps ``(row, col)`` to ``row``; the
        default is the identity, which suits vectors and maps.
        """
        return key

    def extract_partition(self, partitioner: "PartitionerProtocol",
                          index: int) -> "StateElement":
        """Return a new SE holding the subset owned by partition ``index``.

        The receiver is left untouched; callers re-scaling a live SE
        should build all partitions and then discard the original.
        """
        if self.checkpoint_active:
            raise StateError("cannot repartition while a checkpoint is active")
        part = self.spawn_empty()
        for key, value in self._store_items():
            if partitioner.partition(self.partition_key(key)) == index:
                part._store_set(key, value)
        return part

    @classmethod
    def merge_partitions(
        cls, parts: Sequence["StateElement"]
    ) -> "StateElement":
        """Union disjoint partitions back into a single SE instance.

        Used by recovery (reconstituting a checkpoint restored as chunks)
        and by scale-in. Partitions must be disjoint; later partitions win
        on (unexpected) key collisions.
        """
        if not parts:
            raise StateError("merge_partitions requires at least one part")
        merged = parts[0].spawn_empty()
        for part in parts:
            for key, value in part._store_items():
                merged._store_set(key, value)
        return merged

    # ------------------------------------------------------------------
    # Chunked serialisation (Fig. 4)
    # ------------------------------------------------------------------

    def chunk_meta(self) -> dict[str, Any]:
        """Extra shape information replicated into every chunk.

        Subclasses override to carry sizes (e.g. vector length) that are
        not recoverable from the items alone.
        """
        return {}

    def apply_chunk_meta(self, meta: dict[str, Any]) -> None:
        """Re-apply :meth:`chunk_meta` information during restore."""

    def to_chunks(self, m: int) -> list[StateChunk]:
        """Split a consistent snapshot into ``m`` chunks (step B1).

        Items are hash-partitioned on the storage key so that chunk sizes
        are balanced and chunk membership is deterministic.
        """
        if m < 1:
            raise StateError(f"chunk count must be >= 1, got {m}")
        buckets: list[list[tuple[Hashable, Any]]] = [[] for _ in range(m)]
        for key, value in self.snapshot_items():
            buckets[stable_hash(key) % m].append((key, value))
        meta = self.chunk_meta()
        return [
            StateChunk(index=i, total=m, items=tuple(bucket), meta=dict(meta))
            for i, bucket in enumerate(buckets)
        ]

    def load_chunk(self, chunk: StateChunk) -> None:
        """Load one chunk's items into this (recovering) instance (R2)."""
        self.apply_chunk_meta(chunk.meta)
        for key, value in chunk.items:
            self._store_set(key, value)

    @classmethod
    def from_chunks(
        cls, template: "StateElement", chunks: Iterable[StateChunk]
    ) -> "StateElement":
        """Reconstitute an SE from all of its chunks."""
        se = template.spawn_empty()
        for chunk in chunks:
            se.load_chunk(chunk)
        return se

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def entry_count(self) -> int:
        """Number of logical entries currently stored (incl. overlay)."""
        return sum(1 for _ in self._iter_items())

    def estimated_size_bytes(self) -> int:
        """Modelled in-memory footprint, linear in the entry count."""
        return self.entry_count() * self.BYTES_PER_ENTRY


class PartitionerProtocol:
    """Structural protocol: anything with ``partition(key) -> int``."""

    n_partitions: int

    def partition(self, key: Hashable) -> int:  # pragma: no cover
        raise NotImplementedError


def stable_hash(key: Hashable) -> int:
    """A hash that is stable across interpreter runs.

    Python's built-in ``hash`` is randomised per process for strings,
    which would make chunk membership — and therefore recovery tests and
    the deterministic-execution requirement of §4.1 — non-reproducible.
    Integers hash to themselves; other keys hash via CRC-32 of their
    ``repr``.
    """
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key if key >= 0 else -key * 2 + 1
    if isinstance(key, tuple):
        result = 1469598103
        for part in key:
            result = (result * 1099511628211 + stable_hash(part)) % (2**61 - 1)
        return result
    import zlib

    return zlib.crc32(repr(key).encode("utf-8"))

"""The paper's evaluation applications (§6).

* :class:`~repro.apps.collaborative_filtering.CollaborativeFiltering` —
  the running example (Alg. 1): online recommendations over a
  partitioned user-item matrix and a partial co-occurrence matrix;
* :class:`~repro.apps.kvstore.KeyValueStore` — the synthetic benchmark
  of §6.1, "an algorithm with pure mutable state";
* :class:`~repro.apps.logistic_regression.LogisticRegression` — the
  batch/iterative workload of §6.2;
* :func:`~repro.apps.wordcount.build_wordcount_sdg` — the streaming
  wordcount of §6.1 (update-granularity experiment), built with the
  low-level SDG API because its splitter fans one line out into many
  word items.

The annotated programs run both sequentially (instantiate and call) and
distributed (``.launch()``), which the tests exploit to check
translation correctness.
"""

from repro.apps.collaborative_filtering import CollaborativeFiltering
from repro.apps.kmeans import KMeans
from repro.apps.kvstore import KeyValueStore
from repro.apps.logistic_regression import LogisticRegression
from repro.apps.multiclass import MulticlassRegression
from repro.apps.pagerank import build_pagerank_sdg, pagerank_scores
from repro.apps.wordcount import build_wordcount_sdg

__all__ = [
    "CollaborativeFiltering",
    "KMeans",
    "KeyValueStore",
    "LogisticRegression",
    "MulticlassRegression",
    "build_pagerank_sdg",
    "build_wordcount_sdg",
    "pagerank_scores",
]

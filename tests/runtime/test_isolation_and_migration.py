"""Payload isolation (copy_payloads) and planned node migration."""

import pytest

from repro.core import SDG
from repro.errors import RecoveryError
from repro.recovery import BackupStore, RecoveryManager
from repro.runtime import Runtime, RuntimeConfig

from tests.helpers import build_kv_sdg


def build_mutation_hazard_sdg():
    """Upstream emits a mutable list the downstream mutates."""
    sdg = SDG("hazard")
    captured = []

    def producer(ctx, item):
        payload = [item]
        captured.append(payload)
        return payload

    def consumer(ctx, payload):
        payload.append("mutated-by-consumer")
        return len(payload)

    sdg.add_task("producer", producer, is_entry=True)
    sdg.add_task("consumer", consumer)
    sdg.connect("producer", "consumer")
    return sdg, captured


class TestPayloadIsolation:
    def test_shared_reference_hazard_without_copying(self):
        sdg, captured = build_mutation_hazard_sdg()
        runtime = Runtime(sdg).deploy()
        runtime.inject("producer", 1)
        runtime.run_until_idle()
        # In-process, the consumer's mutation is visible to the
        # producer's retained reference — the hazard.
        assert captured[0] == [1, "mutated-by-consumer"]

    def test_copy_payloads_restores_wire_semantics(self):
        sdg, captured = build_mutation_hazard_sdg()
        runtime = Runtime(sdg, RuntimeConfig(copy_payloads=True)).deploy()
        runtime.inject("producer", 1)
        runtime.run_until_idle()
        assert captured[0] == [1]  # producer's copy untouched
        assert runtime.results["consumer"] == [2]

    def test_kv_store_unaffected_by_copying(self):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(se_instances={"table": 2},
                                        copy_payloads=True)).deploy()
        for i in range(20):
            runtime.inject("serve", ("put", i, i))
            runtime.inject("serve", ("get", i, None))
        runtime.run_until_idle()
        assert sorted(runtime.results["serve"]) == [
            (i, i) for i in range(20)
        ]


class TestPlannedMigration:
    def deploy(self, n=1):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(se_instances={"table": n}))
        runtime.deploy()
        store = BackupStore(m_targets=2)
        return runtime, RecoveryManager(runtime, store)

    def test_migration_moves_state_without_loss(self):
        runtime, rec = self.deploy()
        for i in range(40):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        old_node = runtime.se_instance("table", 0).node_id
        new_nodes = rec.migrate_node(old_node)
        runtime.run_until_idle()
        assert not runtime.nodes[old_node].alive
        assert new_nodes[0].node_id != old_node
        merged = dict(runtime.se_instance("table", 0).element.items())
        assert merged == {i: i for i in range(40)}

    def test_migration_with_fanout_reshards(self):
        """Migrating onto two nodes doubles as straggler resharding."""
        runtime, rec = self.deploy()
        for i in range(30):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        old_node = runtime.se_instance("table", 0).node_id
        runtime.nodes[old_node].speed = 0.3  # the straggler
        new_nodes = rec.migrate_node(old_node, n_new=2)
        runtime.run_until_idle()
        assert len(new_nodes) == 2
        assert len(runtime.se_instances("table")) == 2
        merged = {}
        for inst in runtime.se_instances("table"):
            merged.update(dict(inst.element.items()))
        assert merged == {i: i for i in range(30)}

    def test_service_continues_after_migration(self):
        runtime, rec = self.deploy()
        for i in range(10):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        rec.migrate_node(runtime.se_instance("table", 0).node_id)
        runtime.run_until_idle()
        for i in range(10):
            runtime.inject("serve", ("get", i, None))
        runtime.run_until_idle()
        assert sorted(runtime.results["serve"]) == [
            (i, i) for i in range(10)
        ]

    def test_migrating_dead_node_rejected(self):
        runtime, rec = self.deploy()
        node = runtime.se_instance("table", 0).node_id
        runtime.fail_node(node)
        with pytest.raises(RecoveryError):
            rec.migrate_node(node)

"""The SDG runtime: materialised, pipelined execution (§3.3).

Unlike scheduled dataflow systems, an SDG is *materialised*: every task
element is instantiated on its node(s) before data flows, items are
pipelined TE-to-TE without intermediate materialisation, and the number
of TE instances changes reactively at runtime in response to bottlenecks
and stragglers.

This package executes SDGs for real, in-process: logical nodes hold TE
and SE instances, dataflow edges become channels with upstream output
buffers (retained for replay-based recovery), and ``@Global`` access is
implemented with broadcast + gather barriers.
"""

from repro.runtime.detector import DetectionEvent, FailureDetector
from repro.runtime.engine import Runtime, RuntimeConfig
from repro.runtime.envelope import Envelope, NO_RESPONSE
from repro.runtime.monitor import RuntimeMonitor, Sample
from repro.runtime.scaling import BottleneckDetector

__all__ = [
    "BottleneckDetector",
    "DetectionEvent",
    "Envelope",
    "FailureDetector",
    "NO_RESPONSE",
    "Runtime",
    "RuntimeConfig",
    "RuntimeMonitor",
    "Sample",
]

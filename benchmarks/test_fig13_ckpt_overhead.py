"""Fig. 13 — checkpointing overhead vs frequency and state size.

The paper varies the checkpoint interval (2-10 s, plus fault tolerance
disabled) at 1 GB, and the checkpoint size (1-5 GB, fixed 10 s
interval). Expected shape:

* without fault tolerance, p95 latency sits at tens of milliseconds;
  checkpointing 1 GB every 10 s costs some hundreds of milliseconds;
* latency grows as the interval shrinks and as the state grows
  (frequency and size behave roughly proportionally: 4 GB / 10 s ~
  2 GB / 4-5 s);
* the locking overhead scales with the update rate, not the state size,
  so even 5 GB stays comfortably sub-2 s at p95.
"""

from conftest import print_figure

from repro.simulation import CheckpointPolicy, NodeParams, simulate_node

OFFERED = 45_000.0
RUN = dict(duration_s=120.0, tick_s=0.004)
INTERVALS = [2, 4, 6, 8, 10]
SIZES_GB = [1, 2, 3, 4, 5]


def policy(interval_s):
    return CheckpointPolicy(mode="async", interval_s=interval_s,
                            disk_bw=400e6)


def compute_frequency_sweep():
    params = NodeParams(service_rate=65_000, state_bytes=1e9)
    rows = []
    for interval in INTERVALS:
        result = simulate_node(OFFERED, params, policy(interval), **RUN)
        rows.append((f"{interval}s", result.p(95) * 1000))
    no_ft = simulate_node(OFFERED, params, CheckpointPolicy.none(), **RUN)
    rows.append(("No FT", no_ft.p(95) * 1000))
    return rows


def compute_size_sweep():
    rows = []
    no_ft = simulate_node(
        OFFERED, NodeParams(service_rate=65_000, state_bytes=1e9),
        CheckpointPolicy.none(), **RUN,
    )
    rows.append(("No FT", no_ft.p(95) * 1000))
    for gb in SIZES_GB:
        params = NodeParams(service_rate=65_000, state_bytes=gb * 1e9)
        result = simulate_node(OFFERED, params, policy(10), **RUN)
        rows.append((f"{gb} GB", result.p(95) * 1000))
    return rows


def test_fig13_frequency_sweep(benchmark):
    rows = benchmark.pedantic(compute_frequency_sweep, rounds=1,
                              iterations=1)
    print_figure(
        "Fig. 13 (top): p95 latency vs checkpoint frequency (1 GB)",
        ["interval", "p95 latency (ms)"],
        rows,
    )
    by_interval = dict(rows)
    # No-FT baseline: tens of milliseconds.
    assert by_interval["No FT"] < 100
    # Checkpointing costs latency; more frequent costs more.
    assert by_interval["10s"] > by_interval["No FT"]
    assert by_interval["2s"] > by_interval["10s"]
    # Still sub-second at 1 GB / 10 s (paper: ~500 ms).
    assert by_interval["10s"] < 1_000


def test_fig13_size_sweep(benchmark):
    rows = benchmark.pedantic(compute_size_sweep, rounds=1, iterations=1)
    print_figure(
        "Fig. 13 (bottom): p95 latency vs checkpoint size (10 s interval)",
        ["state", "p95 latency (ms)"],
        rows,
    )
    values = dict(rows)
    # Latency grows with checkpoint size...
    series = [values[f"{gb} GB"] for gb in SIZES_GB]
    assert series == sorted(series)
    # ...but the async mechanism keeps even 5 GB comfortably bounded
    # (the lock scales with update rate, not state size).
    assert values["5 GB"] < 2_000
    assert values["1 GB"] < 1_000


def test_fig13_proportionality(benchmark):
    """Frequency and size trade off roughly proportionally (§6.4)."""

    def compute():
        big_slow = simulate_node(
            OFFERED, NodeParams(service_rate=65_000, state_bytes=4e9),
            policy(10), **RUN,
        ).p(95)
        small_fast = simulate_node(
            OFFERED, NodeParams(service_rate=65_000, state_bytes=2e9),
            policy(5), **RUN,
        ).p(95)
        return big_slow, small_fast

    big_slow, small_fast = benchmark.pedantic(compute, rounds=1,
                                              iterations=1)
    print_figure(
        "Fig. 13: frequency/size proportionality",
        ["configuration", "p95 (ms)"],
        [("4 GB every 10 s", big_slow * 1000),
         ("2 GB every 5 s", small_fast * 1000)],
    )
    ratio = big_slow / small_fast
    assert 0.5 < ratio < 2.0

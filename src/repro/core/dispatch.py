"""Dataflow dispatch semantics (§3.1, §4.2).

Items flowing along a dataflow edge are routed to the downstream TE's
instances by one of four strategies, chosen by the translator from the
type of state access (step 4 of Fig. 3):

* ``KEY_PARTITIONED`` — hash/range partitioning on an access key, used
  when the downstream TE accesses a partitioned SE so that each instance
  accesses its co-located partition;
* ``ONE_TO_ANY``      — any single instance (round-robin load balancing),
  used for local access to partial SEs;
* ``ONE_TO_ALL``      — broadcast to every instance, used for ``@Global``
  access to a partial SE;
* ``ALL_TO_ONE``      — gather from every upstream instance into one
  downstream instance behind a synchronisation barrier, used after global
  access and for ``@Collection`` merges.
"""

from __future__ import annotations

import enum


class Dispatch(enum.Enum):
    """How items on a dataflow edge are routed to TE instances."""

    KEY_PARTITIONED = "key_partitioned"
    ONE_TO_ANY = "one_to_any"
    ONE_TO_ALL = "one_to_all"
    ALL_TO_ONE = "all_to_one"

    @property
    def is_broadcast(self) -> bool:
        """Whether one input item fans out to every downstream instance."""
        return self is Dispatch.ONE_TO_ALL

    @property
    def needs_barrier(self) -> bool:
        """Whether the downstream TE must gather from all upstream
        instances before it can run (paper: "synchronisation barrier")."""
        return self is Dispatch.ALL_TO_ONE

    @property
    def needs_key(self) -> bool:
        """Whether the edge must carry a partitioning-key extractor."""
        return self is Dispatch.KEY_PARTITIONED

"""Property test: the manifest fence survives a crash at any point.

The durability contract of :func:`atomic_write_json`: for *any*
sequence of epoch commits, with a power cut injected at *any* point of
any commit's write protocol, reloading the manifest always yields a
fully-formed document at epoch K or K-1 — never a torn one, and never
a regression by more than the single uncommitted epoch.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability import (
    CRASH_POINTS,
    EpochRecord,
    RunManifest,
    SimulatedCrash,
    load_manifest,
    write_manifest,
)

# One commit attempt per epoch: either clean (None) or cut at a point.
crash_plans = st.lists(
    st.one_of(st.none(), st.sampled_from(CRASH_POINTS)),
    min_size=1, max_size=6,
)


def make_manifest():
    return RunManifest(run_id="prop", program={"fingerprint": 1},
                       spec={"app": "kvstore"})


@settings(max_examples=60, deadline=None)
@given(plan=crash_plans)
def test_reload_yields_k_or_k_minus_one(tmp_path_factory, plan):
    run_dir = str(tmp_path_factory.mktemp("run"))
    manifest = make_manifest()
    write_manifest(run_dir, manifest)
    committed = 0  # highest epoch known to be on disk for sure
    for epoch, crash_at in enumerate(plan, start=1):
        manifest.epochs.append(EpochRecord(
            epoch=epoch, position=epoch * 10, state_hash=epoch))
        try:
            write_manifest(run_dir, manifest, crash_at=crash_at)
            committed = epoch
        except SimulatedCrash:
            # The fence may or may not have landed ("after-replace"
            # and later points are post-rename) — but nothing between.
            loaded = load_manifest(run_dir)
            assert loaded.committed_epoch in (epoch, epoch - 1)
            if loaded.committed_epoch == epoch:
                committed = epoch
            # A real crash would end the process here; this incarnation
            # keeps going, so re-commit the epoch cleanly iff the cut
            # happened before the rename (as resume-then-rerun would).
            if loaded.committed_epoch == epoch - 1:
                write_manifest(run_dir, manifest)
                committed = epoch
    final = load_manifest(run_dir)
    assert final.committed_epoch == committed
    # Every surviving record is fully formed.
    for record in final.epochs:
        assert record.state_hash == record.epoch
        assert record.position == record.epoch * 10


@settings(max_examples=20, deadline=None)
@given(point=st.sampled_from(CRASH_POINTS))
def test_every_point_leaves_a_loadable_manifest(tmp_path_factory, point):
    run_dir = str(tmp_path_factory.mktemp("run"))
    manifest = make_manifest()
    write_manifest(run_dir, manifest)
    manifest.epochs.append(EpochRecord(epoch=1, position=10,
                                       state_hash=1))
    try:
        write_manifest(run_dir, manifest, crash_at=point)
    except SimulatedCrash:
        pass
    assert load_manifest(run_dir).committed_epoch in (0, 1)

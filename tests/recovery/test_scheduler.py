"""Tests for automatic checkpoint scheduling via the engine step hook."""

import pytest

from repro.recovery import (
    BackupStore,
    CheckpointManager,
    CheckpointScheduler,
    RecoveryManager,
)
from repro.runtime import Runtime, RuntimeConfig

from tests.helpers import build_kv_sdg


def deploy(every_items=50, complete_after=10, n_partitions=1):
    runtime = Runtime(build_kv_sdg(),
                      RuntimeConfig(se_instances={"table": n_partitions}))
    runtime.deploy()
    store = BackupStore(m_targets=2)
    manager = CheckpointManager(runtime, store)
    scheduler = CheckpointScheduler(
        manager, every_items=every_items,
        complete_after_steps=complete_after,
    ).install()
    return runtime, store, manager, scheduler


class TestScheduling:
    def test_checkpoints_fire_periodically(self):
        runtime, store, _manager, scheduler = deploy(every_items=50)
        for i in range(400):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        scheduler.flush()
        assert scheduler.completed_count >= 5
        node = runtime.se_instance("table", 0).node_id
        assert store.has_checkpoint(node)

    def test_checkpoint_window_stays_open_asynchronously(self):
        """Between begin and complete the SE really is in dirty mode."""
        runtime, _store, _manager, scheduler = deploy(
            every_items=20, complete_after=1_000_000,
        )
        for i in range(60):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        element = runtime.se_instance("table", 0).element
        assert element.checkpoint_active
        assert element.dirty_size > 0
        scheduler.flush()
        assert not element.checkpoint_active

    def test_latest_checkpoint_supports_recovery(self):
        runtime, store, _manager, scheduler = deploy(every_items=40)
        rec = RecoveryManager(runtime, store)
        for i in range(300):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        scheduler.flush()
        node = runtime.se_instance("table", 0).node_id
        version = store.latest(node).version
        assert version >= 3
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        merged = dict(runtime.se_instance("table", 0).element.items())
        assert merged == {i: i for i in range(300)}

    def test_buffer_trimming_is_continuous(self):
        """Periodic checkpoints keep upstream buffers bounded: the input
        log never holds more than ~the un-checkpointed suffix."""
        runtime, _store, _manager, scheduler = deploy(
            every_items=25, complete_after=5,
        )
        for i in range(500):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        scheduler.flush()
        buffered = sum(
            len(b) for b in runtime.input_buffers_snapshot().values()
        )
        assert buffered < 100

    def test_uninstall_stops_checkpointing(self):
        runtime, _store, _manager, scheduler = deploy(every_items=10)
        scheduler.uninstall()
        for i in range(100):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        assert scheduler.completed_count == 0

    def test_invalid_intervals_rejected(self):
        runtime, _store, manager, _scheduler = deploy()
        with pytest.raises(ValueError):
            CheckpointScheduler(manager, every_items=0)

    def test_multiple_partitions_checkpoint_independently(self):
        runtime, store, _manager, scheduler = deploy(
            every_items=30, n_partitions=3,
        )
        for i in range(300):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        scheduler.flush()
        checkpointed_nodes = [
            inst.node_id for inst in runtime.se_instances("table")
            if store.has_checkpoint(inst.node_id)
        ]
        assert len(checkpointed_nodes) == 3

"""The analyzer's view of one annotated program.

:class:`ProgramModel` bundles what the lint passes need: the class,
its annotated fields, the per-entry front-end IR captured by the
translator (TE blocks + live-variable results), the merge methods
reachable from entries, and the constructed SDG. It also provides the
small AST utilities shared across passes (state-field roots, reads vs
writes classification).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field

from repro.core.elements import StateKind
from repro.translate.builder import MethodIR, TranslationResult

#: SE methods that only observe state (the public read surface of
#: KeyValueMap / Vector / Matrix / DenseMatrix and friends).
READ_METHODS = frozenset({
    "get", "get_element", "get_row", "get_col", "to_list", "to_rows",
    "to_dict", "contains", "num_rows", "num_cols", "items", "keys",
    "values", "multiply", "dot", "snapshot", "size",
})

#: SE methods that mutate state through the journalled API. Anything
#: not recognised as a read is conservatively treated as a write.
WRITE_METHODS = frozenset({
    "put", "set", "set_element", "add", "add_element", "add_vector",
    "increment", "delete", "remove", "clear", "append", "extend",
    "update",
})


def source_location(obj) -> tuple[str | None, int]:
    """(file, first line) of ``obj``'s source, tolerant of failures."""
    try:
        file = inspect.getsourcefile(obj)
        _, line_base = inspect.getsourcelines(obj)
        return file, line_base
    except (OSError, TypeError):
        return None, 1


@dataclass
class ProgramModel:
    """Everything the program-level passes read."""

    program: type
    result: TranslationResult
    partial_fields: set[str] = field(default_factory=set)
    partitioned_fields: set[str] = field(default_factory=set)
    #: Intra-class call graph + per-function summaries; built lazily so
    #: passes that never look through calls pay nothing.
    _interproc: object = None

    @classmethod
    def build(cls, program_class: type,
              result: TranslationResult) -> "ProgramModel":
        partial = {
            name for name, descriptor in result.fields.items()
            if descriptor.kind is StateKind.PARTIAL
        }
        partitioned = {
            name for name, descriptor in result.fields.items()
            if descriptor.kind is StateKind.PARTITIONED
        }
        return cls(program=program_class, result=result,
                   partial_fields=partial,
                   partitioned_fields=partitioned)

    @property
    def interproc(self):
        """The :class:`~repro.analysis.summaries.ProgramSummaries` of
        this program (call graph + per-function summaries)."""
        if self._interproc is None:
            from repro.analysis.callgraph import build_callgraph
            from repro.analysis.summaries import compute_summaries
            from repro.translate.builder import _module_aliases

            _, line_base = source_location(self.program)
            aliases = dict(_module_aliases(self.program))
            try:
                source = inspect.getsource(self.program)
                body = ast.parse(textwrap.dedent(source))
                class_def = body.body[0]
                if isinstance(class_def, ast.ClassDef):
                    from repro.translate.restrictions import (
                        collect_import_aliases,
                    )
                    aliases.update(
                        collect_import_aliases(class_def.body)
                    )
            except (OSError, TypeError, SyntaxError):
                pass
            graph = build_callgraph(
                self.program, self.result.method_asts,
                line_base=line_base, module_aliases=aliases,
            )
            self._interproc = compute_summaries(graph)
        return self._interproc

    @property
    def entries(self) -> dict[str, MethodIR]:
        return self.result.method_ir

    def merge_methods(self) -> dict[str, tuple[ast.FunctionDef, str]]:
        """Merge methods reachable from entries.

        Maps method name → (its AST, the name of the parameter that
        receives the gathered collection — the first one after self).
        """
        merges: dict[str, tuple[ast.FunctionDef, str]] = {}
        for ir in self.entries.values():
            for block in ir.blocks:
                if not block.is_merge:
                    continue
                name = block.merge.method
                fn_ast = self.result.method_asts.get(name)
                if fn_ast is None or len(fn_ast.args.args) < 2:
                    continue
                merges[name] = (fn_ast, fn_ast.args.args[1].arg)
        return merges


def state_field_of(node: ast.expr, fields: set[str]) -> str | None:
    """``self.<field>`` → field name when it is an annotated SE field."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in fields
    ):
        return node.attr
    return None


def field_method_calls(stmt: ast.stmt,
                       fields: set[str]) -> list[tuple[str, str, ast.Call]]:
    """All ``self.<field>.<method>(...)`` calls in one statement."""
    calls = []
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        field_name = state_field_of(func.value, fields)
        if field_name is not None:
            calls.append((field_name, func.attr, node))
    return calls


def stmt_reads_field(stmt: ast.stmt, field_name: str,
                     fields: set[str]) -> bool:
    """True when the statement consumes a value derived from the field.

    A bare mutator call (``self.f.put(...)`` as a whole statement) is a
    write, not a read; any other appearance of the field inside an
    expression — including value-returning mutators like
    ``increment`` — observes the current replica's contents.
    """
    for node in ast.walk(stmt):
        field = state_field_of(node, fields)
        if field != field_name:
            continue
        # A pure write: Expr statement whose whole value is a known
        # write-method call on the field.
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.value is node
            and stmt.value.func.attr in WRITE_METHODS
        ):
            continue
        return True
    return False

"""Negative control: a local binding shadowing a forbidden builtin.

The parameter is *named* ``open``, but calling it invokes whatever
the caller supplied — not the file-opening builtin. The restriction
scan must treat locally bound names as shadows and stay silent
(this was a false positive before the scan tracked local bindings).
"""

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class ShadowedOpen(SDGProgram):
    """Applies a caller-supplied formatter named like a builtin."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def render(self, key, open):
        text = open(key)
        self.table.put(key, text)

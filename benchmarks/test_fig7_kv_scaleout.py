"""Fig. 7 — KV store scale-out: 10-40 nodes at 5 GB of state per node.

The paper fixes per-node state at 5 GB and grows the cluster from 10 to
40 VMs (50-200 GB aggregate). Expected shape: near-linear throughput
scaling from ~470 k to ~1.5 M requests/s, median read latency in the
8-29 ms range, and a p95 between ~800 ms and ~1 s (checkpoint
consolidation and queueing tails).

A second part exercises the real runtime: partition counts grow and the
functional engine keeps routing/serving correctly (the mechanism behind
"partitioned state scales").
"""

from conftest import print_figure

from repro.apps import KeyValueStore
from repro.simulation import CheckpointPolicy, NodeParams, simulate_cluster
from repro.workloads import KVWorkload

NODES = [10, 20, 30, 40]
PER_NODE_STATE = 5e9
PER_NODE_OFFERED = 45_000.0


def compute_figure():
    params = NodeParams(service_rate=50_000, state_bytes=PER_NODE_STATE,
                        base_latency_s=0.001, write_fraction=0.8)
    policy = CheckpointPolicy(mode="async", interval_s=10, disk_bw=400e6)
    rows = []
    for n in NODES:
        result = simulate_cluster(
            n, PER_NODE_OFFERED * n, params, policy,
            duration_s=40.0, remote_latency_s=0.0,
            per_node_latency_s=0.0007,  # pins the 8->29 ms medians
        )
        rows.append((
            n,
            n * PER_NODE_STATE / 1e9,
            result.throughput,
            result.p(50) * 1000,
            result.p(95) * 1000,
        ))
    return rows


def test_fig7_scaleout(benchmark):
    rows = benchmark.pedantic(compute_figure, rounds=1, iterations=1)
    print_figure(
        "Fig. 7: KV throughput/latency vs aggregate state (10-40 nodes)",
        ["nodes", "state (GB)", "throughput (req/s)", "p50 (ms)",
         "p95 (ms)"],
        rows,
    )
    throughputs = [row[2] for row in rows]
    # Near-linear scaling: 4x nodes => ~4x throughput.
    assert throughputs[-1] / throughputs[0] > 3.6
    # Paper band: ~470k at 50 GB to ~1.5M at 200 GB.
    assert 350_000 <= throughputs[0] <= 600_000
    assert 1_200_000 <= throughputs[-1] <= 2_000_000
    # Median latency grows modestly with the cluster, staying in the
    # tens of milliseconds (paper: 8 -> 29 ms).
    medians = [row[3] for row in rows]
    assert medians == sorted(medians)
    assert 8 <= medians[0] <= 15
    assert 25 <= medians[-1] <= 40
    # The p95 tail is dominated by checkpointing/queueing, ~1 s.
    assert all(row[4] <= 1_200 for row in rows)


def test_fig7_mechanism_partitioned_serving(benchmark):
    """The functional engine serves correctly at every partition count."""

    def run():
        outcomes = {}
        for partitions in (2, 4, 8):
            app = KeyValueStore.launch(table=partitions)
            workload = KVWorkload(n_keys=200, read_fraction=0.5, seed=13)
            writes, reads = workload.apply_to(app, 400)
            app.run()
            answered = len(app.results("get"))
            outcomes[partitions] = (reads, answered)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Fig. 7 mechanism: reads answered per partition count",
        ["partitions", "reads issued", "reads answered"],
        [(p, r, a) for p, (r, a) in outcomes.items()],
    )
    for reads, answered in outcomes.values():
        assert answered == reads

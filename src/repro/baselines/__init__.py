"""Comparator-system models (§6 baselines).

The paper compares SDGs against Naiad (v0.2), Spark, and Streaming
Spark (D-Streams). We reproduce the *mechanisms* those comparisons
exercise — synchronous stop-the-world global checkpointing, micro-batch
scheduling, and lineage-based recomputation — parameterised over the
same simulated substrate as the SDG model, so differences in results are
attributable to the mechanism rather than to implementation constants.
"""

from repro.baselines.dstreams import StreamingSparkModel
from repro.baselines.naiad import NaiadModel
from repro.baselines.spark import SparkModel

__all__ = ["NaiadModel", "SparkModel", "StreamingSparkModel"]

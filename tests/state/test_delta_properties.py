"""Property-based tests for incremental (delta) checkpoint correctness.

The contract: for *any* interleaving of mutations and checkpoints,
folding the full base plus the ordered delta chain reconstructs exactly
the state a full checkpoint would have captured — including deletions
inside a delta window and writes that land in the dirty overlay while a
delta checkpoint is pending.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.state import DeltaChunk, KeyValueMap

keys = st.one_of(st.integers(0, 40), st.text(max_size=4))
# An op is (key, value) for a put, or (key, None) for a delete.
op = st.tuples(keys, st.one_of(st.none(), st.integers(-100, 100)))
# A run is a list of checkpoint windows, each a list of ops.
windows = st.lists(st.lists(op, max_size=25), min_size=1, max_size=6)


def apply_ops(se, ops):
    for key, value in ops:
        if value is None:
            try:
                se.delete(key)
            except KeyError:
                pass
        else:
            se.put(key, value)


def checkpoint_cycle(se, version, n_chunks=3):
    """One async cycle: full base at v1, deltas after; returns chunks."""
    se.begin_checkpoint()
    if version == 1:
        chunks = se.to_chunks(n_chunks)
        kind = "full"
    else:
        chunks = se.to_delta_chunks(n_chunks, version=version,
                                    base_version=version - 1)
        kind = "delta"
    se.mark_clean()
    se.consolidate()
    return kind, chunks


def fold(base_chunks, delta_cycles):
    restored = KeyValueMap()
    for chunk in base_chunks:
        restored.load_chunk(chunk)
    for chunks in delta_cycles:
        for chunk in chunks:
            restored.load_delta_chunk(chunk)
    return restored


@settings(max_examples=60, deadline=None)
@given(runs=windows)
def test_fold_of_base_plus_deltas_equals_live_state(runs):
    se = KeyValueMap()
    base = None
    deltas = []
    for version, ops in enumerate(runs, start=1):
        apply_ops(se, ops)
        kind, chunks = checkpoint_cycle(se, version)
        if kind == "full":
            base = chunks
        else:
            deltas.append(chunks)
    restored = fold(base, deltas)
    assert dict(restored.items()) == dict(se.items())


@settings(max_examples=60, deadline=None)
@given(runs=windows, pending=st.lists(op, max_size=25))
def test_overlay_writes_during_pending_delta_land_in_next_delta(
    runs, pending
):
    """Writes made *while a delta checkpoint is pending* are not lost:
    they consolidate into the journal and ship with the next delta."""
    se = KeyValueMap()
    base = None
    deltas = []
    for version, ops in enumerate(runs, start=1):
        apply_ops(se, ops)
        se.begin_checkpoint()
        if version == 1:
            chunks = se.to_chunks(3)
        else:
            chunks = se.to_delta_chunks(3, version=version,
                                        base_version=version - 1)
        # Mutations racing the pending checkpoint: dirty overlay.
        apply_ops(se, pending)
        se.mark_clean()
        se.consolidate()
        if version == 1:
            base = chunks
        else:
            deltas.append(chunks)
    # One final cycle flushes whatever the last overlay re-journalled.
    version = len(runs) + 1
    se.begin_checkpoint()
    if version == 1:
        base = se.to_chunks(3)
    else:
        deltas.append(se.to_delta_chunks(3, version=version,
                                         base_version=version - 1))
    se.mark_clean()
    se.consolidate()
    restored = fold(base, deltas)
    assert dict(restored.items()) == dict(se.items())


@settings(max_examples=60, deadline=None)
@given(runs=windows)
def test_delta_chain_equals_one_full_checkpoint(runs):
    """restore(base + delta chain) == restore(full checkpoint now)."""
    se = KeyValueMap()
    base = None
    deltas = []
    for version, ops in enumerate(runs, start=1):
        apply_ops(se, ops)
        kind, chunks = checkpoint_cycle(se, version)
        if kind == "full":
            base = chunks
        else:
            deltas.append(chunks)
    via_chain = fold(base, deltas)

    se.begin_checkpoint()
    full_now = se.to_chunks(3)
    se.consolidate()
    via_full = KeyValueMap.from_chunks(KeyValueMap(), full_now)

    assert dict(via_chain.items()) == dict(via_full.items())


@settings(max_examples=40, deadline=None)
@given(ops_before=st.lists(op, max_size=25),
       ops_after=st.lists(op, max_size=25))
def test_delta_size_is_bounded_by_mutations_not_state(ops_before, ops_after):
    se = KeyValueMap()
    apply_ops(se, ops_before)
    checkpoint_cycle(se, 1)
    apply_ops(se, ops_after)
    _kind, chunks = checkpoint_cycle(se, 2)
    moved = sum(chunk.entry_count() for chunk in chunks)
    distinct = len({key for key, _ in ops_after})
    assert moved <= distinct
    for chunk in chunks:
        assert isinstance(chunk, DeltaChunk)
        assert chunk.version == 2 and chunk.base_version == 1

"""Unit tests for the four-step allocation algorithm (§3.3)."""

import pytest

from repro.core import SDG, AccessMode, Dispatch, StateKind, allocate
from repro.errors import AllocationError
from repro.core.allocation import Allocation
from repro.state import KeyValueMap

from tests.helpers import build_cf_sdg, build_iterative_sdg, noop


class TestFig1Allocation:
    """The paper walks Fig. 1 through the algorithm: n1..n3."""

    def test_cf_uses_three_nodes(self):
        allocation = allocate(build_cf_sdg())
        assert allocation.n_nodes == 3

    def test_tasks_colocated_with_their_state(self):
        allocation = allocate(build_cf_sdg())
        assert allocation.colocated("updateUserItem", "userItem")
        assert allocation.colocated("getUserVec", "userItem")
        assert allocation.colocated("updateCoOcc", "coOcc")
        assert allocation.colocated("getRecVec", "coOcc")

    def test_states_on_separate_nodes(self):
        allocation = allocate(build_cf_sdg())
        assert not allocation.colocated("userItem", "coOcc")

    def test_merge_on_its_own_node(self):
        allocation = allocate(build_cf_sdg())
        merge_node = allocation.node_of["mergeRec"]
        assert allocation.nodes[merge_node] == {"mergeRec"}


class TestCycleColocations:
    def test_cycle_states_share_a_node(self):
        allocation = allocate(build_iterative_sdg())
        assert allocation.colocated("modelA", "modelB")

    def test_cycle_tasks_follow_their_states(self):
        allocation = allocate(build_iterative_sdg())
        assert allocation.colocated("stepA", "modelA")
        assert allocation.colocated("stepB", "modelB")

    def test_non_cycle_state_not_dragged_in(self):
        sdg = build_iterative_sdg()
        sdg.add_state("other", KeyValueMap, kind=StateKind.PARTITIONED)
        sdg.add_task("reader", noop, state="other",
                     access=AccessMode.PARTITIONED)
        sdg.connect("stepB", "reader", Dispatch.KEY_PARTITIONED,
                    key_fn=lambda x: x, key_name="k")
        allocation = allocate(sdg)
        assert not allocation.colocated("other", "modelA")


class TestAllocationStructure:
    def test_every_element_is_placed_once(self):
        sdg = build_cf_sdg()
        allocation = allocate(sdg)
        placed = sorted(allocation.node_of)
        assert placed == sorted(list(sdg.tasks) + list(sdg.states))

    def test_inverse_mapping_consistent(self):
        allocation = allocate(build_cf_sdg())
        for element, node in allocation.node_of.items():
            assert element in allocation.nodes[node]

    def test_double_placement_rejected(self):
        allocation = Allocation()
        allocation.place("x", 0)
        with pytest.raises(AllocationError):
            allocation.place("x", 1)

    def test_stateless_pipeline_gets_one_node_per_te(self):
        sdg = SDG()
        sdg.add_task("a", noop, is_entry=True)
        sdg.add_task("b", noop)
        sdg.connect("a", "b")
        allocation = allocate(sdg)
        assert allocation.n_nodes == 2
        assert not allocation.colocated("a", "b")

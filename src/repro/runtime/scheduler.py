"""The scheduling layer: which TE instance serves the next item.

The engine's step loop used to hard-code a round-robin scan; this
module turns instance selection into a pluggable :class:`Scheduler`
policy chosen by ``RuntimeConfig(scheduler=...)``. Two policies ship:

* :class:`RoundRobinScheduler` (the default) preserves the seed
  engine's deterministic rotor order exactly, which is what keeps
  recovery replay (§4.1) reproducing the original execution;
* :class:`LongestQueueScheduler` drains the deepest inbox first — a
  latency-oriented policy for skewed loads, still deterministic via an
  instance-key tie-break.

Straggler throttling (§3.3) is part of scheduling, not transport: a
node with ``speed < 1`` earns fractional *credit* per scheduling visit
and only serves an item once a full credit accrues, inflating its
per-item service time by ``1/speed``. When every pending item sits on
a throttled node, ``select`` returns no instance but reports the
throttle, and the engine turns that into a *stall tick* — logical time
passes, hooks run, and the failure detector can observe the stall.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import RuntimeExecutionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.instances import TEInstance
    from repro.runtime.node import PhysicalNode


@runtime_checkable
class Scheduler(Protocol):
    """Instance-selection policy driven once per engine step."""

    #: Registry name of the policy (``RuntimeConfig(scheduler=name)``).
    name: str

    def select(
        self,
        instances: "list[TEInstance]",
        nodes: "dict[int, PhysicalNode]",
    ) -> "tuple[TEInstance | None, bool]":
        """Pick the instance that serves the next item.

        ``instances`` are the live TE instances in deployment order;
        ``nodes`` maps node ids to their (live) nodes. Returns
        ``(instance, throttled)``: ``instance`` is ``None`` when
        nothing can be served, and ``throttled`` is True when at least
        one pending item was held back by straggler credit — the
        engine's stall-tick signal.
        """
        ...  # pragma: no cover - protocol


class _CreditedScheduler:
    """Shared straggler-credit accounting (see module docstring)."""

    @staticmethod
    def _admit(node: "PhysicalNode") -> bool:
        """Charge one scheduling visit; True if the node may serve now."""
        if node.speed >= 1.0:
            return True
        node.credit += max(node.speed, 0.0)
        if node.credit < 1.0:
            return False
        node.credit -= 1.0
        return True

    @staticmethod
    def charge(node: "PhysicalNode", extra_items: int) -> None:
        """Debit credit for items served beyond the admitted one.

        A coalesced batch serves N items in the step the scheduler
        admitted a single item for; charging the extra ``N - 1`` keeps
        a throttled node's effective throughput at ``speed`` items per
        visit instead of letting batching smuggle work past the
        straggler model. Full-speed nodes carry no credit account, so
        this is a no-op for them.
        """
        if node.speed >= 1.0 or extra_items <= 0:
            return
        node.credit -= float(extra_items)


class RoundRobinScheduler(_CreditedScheduler):
    """The seed engine's deterministic rotor scan (default policy).

    Instances are visited in deployment order starting one past the
    previously served instance, so every instance with pending input is
    served within one full rotation — the fairness property the replay
    determinism contract (§4.1) is built on.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._rotor = 0

    def select(self, instances, nodes):
        n = len(instances)
        throttled = False
        for offset in range(n):
            instance = instances[(self._rotor + offset) % n]
            if not instance.inbox:
                continue
            if not self._admit(nodes[instance.node_id]):
                throttled = True
                continue
            self._rotor = (self._rotor + offset + 1) % n
            return instance, throttled
        return None, throttled


class LongestQueueScheduler(_CreditedScheduler):
    """Serve the instance with the deepest inbox first.

    Ties break on the instance key ``(te_name, index)``, keeping the
    policy fully deterministic. Useful under skewed load, where
    draining the worst backlog first bounds the maximum queue depth;
    note that it changes processing order relative to the seed, so
    replays must use the same policy they recorded under.
    """

    name = "longest_queue"

    def select(self, instances, nodes):
        ready = [inst for inst in instances if inst.inbox]
        # Depth in logical items (queued_items counts every payload
        # inside a coalesced batch) — identical to len(inbox) whenever
        # coalescing is off, so seed determinism is untouched.
        ready.sort(key=lambda inst: (-inst.queued_items, inst.key))
        throttled = False
        for instance in ready:
            if not self._admit(nodes[instance.node_id]):
                throttled = True
                continue
            return instance, throttled
        return None, throttled


#: Built-in policies selectable by name via ``RuntimeConfig(scheduler=...)``.
SCHEDULERS: dict[str, type] = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    LongestQueueScheduler.name: LongestQueueScheduler,
}


def resolve_scheduler(spec: "str | Scheduler") -> "Scheduler":
    """Turn a config knob into a scheduler instance.

    Accepts a registry name or any object implementing the
    :class:`Scheduler` protocol (a custom policy). Raises
    :class:`~repro.errors.RuntimeExecutionError` for anything else, so
    a typo'd policy name fails at deploy time.
    """
    if isinstance(spec, str):
        cls = SCHEDULERS.get(spec)
        if cls is None:
            raise RuntimeExecutionError(
                f"unknown scheduler {spec!r}; available policies: "
                f"{sorted(SCHEDULERS)}"
            )
        return cls()
    if callable(getattr(spec, "select", None)):
        return spec
    raise RuntimeExecutionError(
        f"RuntimeConfig.scheduler must be a policy name or an object "
        f"with a select() method, got {spec!r}"
    )

"""Journal-batching windows (the ``BATCHABLE_RMW`` licence).

``begin_batch``/``end_batch`` let the backend defer per-mutation
journal *bookkeeping* — never the storage writes themselves — across a
delivery batch. The invariant under test: for any mutation sequence,
the journal observable after the window closes is identical to the
journal of the same sequence applied unbatched, including the
write-then-delete and delete-then-rewrite collapses, and every reader
of the journal (snapshot, size, clear) sees a flushed view.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.state import DenseGridBackend, DictBackend, KeyValueMap


def apply_ops(backend, ops):
    for op, key in ops:
        if op == "set":
            backend.set(key, f"v{key}")
        else:
            if backend.contains(key):
                backend.delete(key)


class TestBatchedJournalEquivalence:
    def test_batched_window_matches_unbatched_journal(self):
        ops = [("set", "a"), ("set", "b"), ("del", "a"),
               ("set", "c"), ("del", "b"), ("set", "a")]
        plain = DictBackend()
        apply_ops(plain, ops)
        batched = DictBackend()
        batched.begin_batch()
        apply_ops(batched, ops)
        batched.end_batch()
        assert batched.journal().written == plain.journal().written
        assert batched.journal().deleted == plain.journal().deleted

    def test_storage_writes_are_never_deferred(self):
        backend = DictBackend()
        backend.begin_batch()
        backend.set("a", 1)
        # Mid-window the value is live even though the journal isn't.
        assert backend.get("a") == 1
        backend.end_batch()
        assert backend.journal().written == {"a"}

    def test_write_then_delete_collapses_inside_the_window(self):
        backend = DictBackend()
        backend.begin_batch()
        backend.set("a", 1)
        backend.delete("a")
        backend.end_batch()
        journal = backend.journal()
        assert journal.deleted == {"a"} and not journal.written

    def test_delete_then_rewrite_collapses_inside_the_window(self):
        backend = DictBackend()
        backend.set("a", 1)
        backend.mark_clean()
        backend.begin_batch()
        backend.delete("a")
        backend.set("a", 2)
        backend.end_batch()
        journal = backend.journal()
        assert journal.written == {"a"} and not journal.deleted

    def test_journal_read_flushes_an_open_window(self):
        backend = DictBackend()
        backend.begin_batch()
        backend.set("a", 1)
        # Checkpoint-style readers must never see a stale journal,
        # even if a crash interrupts the window before end_batch.
        assert backend.journal().written == {"a"}
        assert backend.journal_size == 1
        backend.end_batch()

    def test_mark_clean_drops_pending_ops(self):
        backend = DictBackend()
        backend.begin_batch()
        backend.set("a", 1)
        backend.mark_clean()
        backend.end_batch()
        assert backend.journal().empty

    def test_clear_flushes_first(self):
        backend = DictBackend()
        backend.begin_batch()
        backend.set("a", 1)
        backend.set("b", 2)
        backend.clear()
        backend.end_batch()
        assert backend.journal().deleted == {"a", "b"}

    def test_begin_batch_is_idempotent(self):
        backend = DictBackend()
        backend.begin_batch()
        backend.begin_batch()
        backend.set("a", 1)
        backend.end_batch()
        assert backend.journal().written == {"a"}

    def test_dense_grid_clear_flushes_open_window(self):
        backend = DenseGridBackend(2, 2)
        backend.begin_batch()
        backend.set((0, 0), 5.0)
        backend.clear()
        backend.end_batch()
        # clear() on the grid journals every cell as a write of 0.
        assert (0, 0) in backend.journal().written

    def test_element_layer_delegates(self):
        element = KeyValueMap()
        element.begin_rmw_batch()
        element.put("k", 1)
        element.put("j", 2)
        element.end_rmw_batch()
        journal = element._backend.journal()
        assert journal.written == {"k", "j"}


ops_strategy = st.lists(
    st.tuples(st.sampled_from(["set", "del"]), st.integers(0, 5)),
    min_size=0, max_size=30,
)


@given(ops=ops_strategy, boundary=st.integers(0, 30))
@settings(max_examples=50, deadline=None)
def test_any_sequence_is_journal_equivalent(ops, boundary):
    """Batched-prefix + unbatched-suffix equals fully unbatched."""
    plain = DictBackend()
    apply_ops(plain, ops)
    mixed = DictBackend()
    mixed.begin_batch()
    apply_ops(mixed, ops[:boundary])
    mixed.end_batch()
    apply_ops(mixed, ops[boundary:])
    assert mixed.journal().written == plain.journal().written
    assert mixed.journal().deleted == plain.journal().deleted
    assert dict(mixed.items()) == dict(plain.items())

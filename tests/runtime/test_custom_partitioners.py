"""Range partitioning through the runtime (§3.2 strategies)."""

import pytest

from repro.errors import RuntimeExecutionError, StateError
from repro.runtime import Runtime, RuntimeConfig
from repro.state import RangePartitioner

from tests.helpers import build_cf_sdg, build_kv_sdg


class TestRangePartitionedDeployment:
    def deploy(self):
        # keys < 10 -> partition 0, 10..19 -> 1, >= 20 -> 2.
        partitioner = RangePartitioner([10, 20])
        runtime = Runtime(build_kv_sdg(), RuntimeConfig(
            partitioners={"table": partitioner},
        ))
        return runtime.deploy(), partitioner

    def test_partitioner_fixes_instance_count(self):
        runtime, partitioner = self.deploy()
        assert len(runtime.se_instances("table")) == 3

    def test_keys_land_in_their_range(self):
        runtime, partitioner = self.deploy()
        for key in (1, 5, 12, 18, 25, 30):
            runtime.inject("serve", ("put", key, key))
        runtime.run_until_idle()
        contents = [sorted(inst.element.keys())
                    for inst in runtime.se_instances("table")]
        assert contents == [[1, 5], [12, 18], [25, 30]]

    def test_reads_follow_ranges(self):
        runtime, _p = self.deploy()
        for key in (1, 12, 25):
            runtime.inject("serve", ("put", key, key * 2))
        for key in (1, 12, 25):
            runtime.inject("serve", ("get", key, None))
        runtime.run_until_idle()
        assert sorted(runtime.results["serve"]) == [
            (1, 2), (12, 24), (25, 50),
        ]

    def test_scale_up_refuses_range_partitions(self):
        runtime, _p = self.deploy()
        with pytest.raises((RuntimeExecutionError, StateError)):
            runtime.scale_up("serve")


class TestConfigValidation:
    def test_conflicting_instance_count_rejected(self):
        runtime = Runtime(build_kv_sdg(), RuntimeConfig(
            partitioners={"table": RangePartitioner([10])},
            se_instances={"table": 5},
        ))
        with pytest.raises(RuntimeExecutionError, match="conflicts"):
            runtime.deploy()

    def test_matching_instance_count_accepted(self):
        runtime = Runtime(build_kv_sdg(), RuntimeConfig(
            partitioners={"table": RangePartitioner([10])},
            se_instances={"table": 2},
        ))
        runtime.deploy()
        assert len(runtime.se_instances("table")) == 2

    def test_partitioner_on_partial_se_rejected(self):
        runtime = Runtime(build_cf_sdg(), RuntimeConfig(
            partitioners={"coOcc": RangePartitioner([10])},
        ))
        with pytest.raises(RuntimeExecutionError, match="partial"):
            runtime.deploy()

"""State-access extraction and classification (Fig. 3, step 3).

For every statement of an entry method we determine which annotated
state fields it touches and how:

* ``self.field`` on a ``Partitioned`` field → *partitioned* access
  (through the field's declared key);
* ``self.field`` on a ``Partial`` field → *local* access (one replica);
* ``global_(self.field)`` → *global* access (all replicas — becomes a
  one-to-all broadcast);
* ``self.method(collection(var))`` → a *merge* call (becomes a merge TE
  behind an all-to-one barrier).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.core.elements import AccessMode, StateKind
from repro.errors import TranslationError

_GLOBAL_MARKERS = {"global_"}
_COLLECTION_MARKERS = {"collection"}


@dataclass(frozen=True)
class StateAccess:
    """One classified access of a statement to a state field."""

    field: str
    mode: AccessMode
    key: str | None = None  # declared partition-key variable name


@dataclass(frozen=True)
class MergeCall:
    """A ``self.method(collection(var))`` merge invocation."""

    method: str
    collection_var: str


@dataclass
class StatementInfo:
    """Everything the splitter needs to know about one statement."""

    accesses: list[StateAccess]
    merge: MergeCall | None
    helper_calls: list[str]


def _marker_name(func: ast.expr) -> str | None:
    """The bare name of a marker call (``global_`` / ``collection``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _self_field(node: ast.expr) -> str | None:
    """``self.<field>`` → field name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_class(node: ast.expr) -> bool:
    """``self.__class__`` as an expression."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "__class__"
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


class _AccessCollector(ast.NodeVisitor):
    """Walks one statement collecting classified state accesses."""

    def __init__(self, fields: dict) -> None:
        self.fields = fields  # name -> StateField descriptor
        self.accesses: list[StateAccess] = []
        self.merge: MergeCall | None = None
        self.helper_calls: list[str] = []
        self._lineno: int | None = None

    # -- call handling -------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        marker = _marker_name(node.func)
        if marker in _GLOBAL_MARKERS:
            self._handle_global(node)
            return
        if marker in _COLLECTION_MARKERS:
            raise TranslationError(
                "collection(...) may only appear as the sole argument of "
                "a merge method call: self.<merge>(collection(var))",
                lineno=node.lineno,
            )
        field = _self_field(node.func)
        if field is not None and field not in self.fields:
            # self.method(...) — helper or merge call.
            if self._is_merge_call(node):
                self._handle_merge(node, field)
                return
            self.helper_calls.append(field)
            for arg in node.args:
                self.visit(arg)
            for kw in node.keywords:
                self.visit(kw.value)
            return
        # self.__class__.method(...) — staticmethod-style helper call.
        if (
            isinstance(node.func, ast.Attribute)
            and _self_class(node.func.value)
            and node.func.attr not in self.fields
        ):
            self.helper_calls.append(node.func.attr)
            for arg in node.args:
                self.visit(arg)
            for kw in node.keywords:
                self.visit(kw.value)
            return
        self.generic_visit(node)

    def _is_merge_call(self, node: ast.Call) -> bool:
        return any(
            isinstance(arg, ast.Call)
            and _marker_name(arg.func) in _COLLECTION_MARKERS
            for arg in node.args
        )

    def _handle_merge(self, node: ast.Call, method: str) -> None:
        if self.merge is not None:
            raise TranslationError(
                "at most one merge call per statement", lineno=node.lineno
            )
        if node.keywords or not node.args:
            raise TranslationError(
                f"merge call self.{method}(...) must use positional "
                f"arguments, collection(...) first", lineno=node.lineno
            )
        inner = node.args[0]
        if not (isinstance(inner, ast.Call)
                and _marker_name(inner.func) in _COLLECTION_MARKERS):
            raise TranslationError(
                f"merge call self.{method}(...) must take the "
                f"collection(...) expression as its first argument",
                lineno=node.lineno,
            )
        for extra in node.args[1:]:
            if any(
                isinstance(sub, ast.Call)
                and _marker_name(sub.func) in _COLLECTION_MARKERS
                for sub in ast.walk(extra)
            ):
                raise TranslationError(
                    "only the first merge argument may be a "
                    "collection(...)", lineno=node.lineno,
                )
        if len(inner.args) != 1 or not isinstance(inner.args[0], ast.Name):
            raise TranslationError(
                "collection(...) must wrap a single local variable",
                lineno=node.lineno,
            )
        self.merge = MergeCall(method=method,
                               collection_var=inner.args[0].id)
        # Extra (single-valued) arguments are ordinary expressions:
        # visit them so their own accesses/uses are observed.
        for extra in node.args[1:]:
            self.visit(extra)

    def _handle_global(self, node: ast.Call) -> None:
        if len(node.args) != 1:
            raise TranslationError(
                "global_(...) takes exactly one state field",
                lineno=node.lineno,
            )
        field = _self_field(node.args[0])
        if field is None or field not in self.fields:
            raise TranslationError(
                "global_(...) must wrap an annotated state field "
                "(global_(self.<field>))", lineno=node.lineno,
            )
        descriptor = self.fields[field]
        if descriptor.kind is not StateKind.PARTIAL:
            raise TranslationError(
                f"global_ access requires a Partial field; "
                f"{field!r} is {descriptor.kind.value}",
                lineno=node.lineno,
            )
        self.accesses.append(
            StateAccess(field=field, mode=AccessMode.GLOBAL)
        )

    # -- plain field access ---------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        field = _self_field(node)
        if field is None:
            self.generic_visit(node)
            return
        if field == "__class__":
            # ``self.__class__`` is the class object, not program state;
            # codegen rewrites it to the class name.
            return
        if field not in self.fields:
            raise TranslationError(
                f"self.{field} is not an annotated state field or a "
                f"method; all program state must use explicit state "
                f"classes (§4.1)", lineno=node.lineno,
            )
        descriptor = self.fields[field]
        if descriptor.kind is StateKind.PARTITIONED:
            self.accesses.append(
                StateAccess(field=field, mode=AccessMode.PARTITIONED,
                            key=descriptor.key)
            )
        else:
            self.accesses.append(
                StateAccess(field=field, mode=AccessMode.LOCAL)
            )


def analyse_statement(stmt: ast.stmt, fields: dict) -> StatementInfo:
    """Classify one statement's state accesses (deduplicated)."""
    collector = _AccessCollector(fields)
    collector.visit(stmt)
    unique: list[StateAccess] = []
    for access in collector.accesses:
        if access not in unique:
            unique.append(access)
    touched = {a.field for a in unique}
    if len(touched) > 1:
        raise TranslationError(
            f"statement accesses multiple state elements "
            f"({sorted(touched)}); each task element may access only one "
            f"SE — split the statement", lineno=stmt.lineno,
        )
    modes = {a.mode for a in unique}
    if len(modes) > 1:
        raise TranslationError(
            f"statement mixes access modes "
            f"({sorted(m.value for m in modes)}) on "
            f"{next(iter(touched))!r}; split the statement",
            lineno=stmt.lineno,
        )
    return StatementInfo(
        accesses=unique,
        merge=collector.merge,
        helper_calls=collector.helper_calls,
    )

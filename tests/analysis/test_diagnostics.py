"""Unit tests for the diagnostics engine (codes, sinks, reports)."""

import json

from repro.analysis import CODES, Diagnostic, DiagnosticSink, Report, Severity, Span


class TestCodeRegistry:
    def test_every_code_has_name_severity_and_section(self):
        for code, info in CODES.items():
            assert code.startswith("SDG")
            assert info.name
            assert isinstance(info.severity, Severity)
            assert info.summary

    def test_pass_codes_registered(self):
        for code in ("SDG101", "SDG102", "SDG301", "SDG302", "SDG303",
                     "SDG304", "SDG305"):
            assert code in CODES

    def test_validation_codes_registered(self):
        for code in ("SDG201", "SDG202", "SDG203", "SDG211", "SDG212",
                     "SDG213", "SDG221", "SDG222", "SDG231", "SDG232"):
            assert code in CODES

    def test_severity_ranks_order(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank


class TestSpan:
    def test_str_forms(self):
        assert str(Span(file="f.py", line=3, col=7)) == "f.py:3:7"
        assert str(Span(file="f.py", line=3)) == "f.py:3"
        assert str(Span(line=3)) == "<sdg>:3"


class TestSink:
    def test_emit_defaults_severity_from_registry(self):
        sink = DiagnosticSink()
        sink.emit("SDG301", "boom")
        sink.emit("SDG305", "meh")
        assert sink.diagnostics[0].severity is Severity.ERROR
        assert sink.diagnostics[1].severity is Severity.WARNING

    def test_line_base_rebases_class_relative_linenos(self):
        sink = DiagnosticSink(file="prog.py", line_base=40)
        sink.emit("SDG301", "boom", lineno=3)
        span = sink.diagnostics[0].span
        assert span.file == "prog.py"
        assert span.line == 42

    def test_unknown_code_defaults_to_error(self):
        sink = DiagnosticSink()
        diag = sink.emit("SDG999", "unregistered")
        assert diag.severity is Severity.ERROR
        assert diag.name == "SDG999"  # falls back to the raw code


class TestReport:
    def _report(self):
        sink = DiagnosticSink(file="p.py")
        sink.emit("SDG305", "w1", lineno=9)
        sink.emit("SDG301", "e1", lineno=5)
        sink.emit("SDG302", "w2", lineno=2)
        return Report(target="p", diagnostics=sink.diagnostics)

    def test_partitions_and_flags(self):
        report = self._report()
        assert len(report.errors) == 1
        assert len(report.warnings) == 2
        assert not report.ok
        assert not report.clean
        empty = Report(target="p", diagnostics=[])
        assert empty.ok and empty.clean

    def test_sorted_puts_errors_first_then_line_order(self):
        codes = [d.code for d in self._report().sorted()]
        assert codes == ["SDG301", "SDG302", "SDG305"]

    def test_by_code_and_codes(self):
        report = self._report()
        assert {d.code for d in report.by_code("SDG302")} == {"SDG302"}
        assert report.codes() == {"SDG301", "SDG302", "SDG305"}

    def test_render_text_mentions_every_code(self):
        text = self._report().render_text()
        for code in ("SDG301", "SDG302", "SDG305"):
            assert code in text
        assert "1 error(s)" in text

    def test_json_round_trip(self):
        payload = json.loads(self._report().to_json())
        assert payload["target"] == "p"
        assert payload["summary"] == {"errors": 1, "warnings": 2,
                                      "total": 3}
        assert len(payload["diagnostics"]) == 3
        first = payload["diagnostics"][0]
        assert {"code", "severity", "message", "file", "line"} <= set(first)
        assert first["code"] == "SDG301"  # sorted: errors first

    def test_diagnostic_render_includes_span_and_name(self):
        diag = Diagnostic(
            code="SDG301", severity=Severity.ERROR, message="boom",
            span=Span(file="p.py", line=5),
        )
        rendered = diag.render()
        assert "p.py:5" in rendered
        assert "SDG301" in rendered
        assert CODES["SDG301"].name in rendered

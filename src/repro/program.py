"""The user-facing programming model.

Subclass :class:`SDGProgram`, declare state with ``Partitioned`` /
``Partial`` fields, write ordinary imperative methods, mark the external
operations with ``@entry`` — then either

* *instantiate and call* the class for plain sequential execution (the
  annotations degrade to single-instance semantics), or
* :meth:`SDGProgram.launch` it: the class is translated to an SDG and
  deployed on the in-process runtime; entry methods become injection
  proxies on the returned :class:`BoundProgram`.

The two execution modes compute the same results — that equivalence is
the correctness contract of the translation (and is what the test suite
checks program-by-program).
"""

from __future__ import annotations

from typing import Any

from repro.core.graph import SDG
from repro.runtime.engine import Runtime, RuntimeConfig
from repro.translate.builder import TranslationResult, translate


class SDGProgram:
    """Base class for annotated imperative programs."""

    @classmethod
    def translate(cls) -> TranslationResult:
        """Run py2sdg over this class."""
        return translate(cls)

    @classmethod
    def to_sdg(cls) -> SDG:
        """The translated stateful dataflow graph."""
        return translate(cls).sdg

    @classmethod
    def launch(cls, config: RuntimeConfig | None = None,
               **se_instances: int) -> "BoundProgram":
        """Translate, deploy and return a callable program handle.

        ``se_instances`` conveniently sets initial SE instance counts by
        field name: ``CF.launch(user_item=4, co_occ=2)``.
        """
        result = translate(cls)
        if se_instances:
            config = config or RuntimeConfig()
            config.se_instances.update(se_instances)
        if config is not None and config.optimize \
                and config.capabilities is None:
            # Certify from the *class* (source-level proofs see the
            # original method bodies, where the SDG path would have to
            # re-derive them from compiled block functions) and hand
            # the certificate to the runtime through the config.
            from repro.analysis.capabilities import certify
            config.capabilities = certify(cls)
            result.capabilities = config.capabilities
        runtime = Runtime(result.sdg, config).deploy()
        return BoundProgram(result, runtime)


class _EntryProxy:
    """Callable proxy injecting one entry method's invocations."""

    def __init__(self, bound: "BoundProgram", method: str) -> None:
        self._bound = bound
        self._info = bound.translation.entry_info(method)

    def __call__(self, *args: Any) -> None:
        params = self._info.params
        if len(args) != len(params):
            raise TypeError(
                f"{self._info.method}() takes {len(params)} arguments "
                f"({', '.join(params)}); got {len(args)}"
            )
        payload: Any
        if len(args) == 0:
            payload = ()
        elif len(args) == 1:
            payload = args[0]
        else:
            payload = tuple(args)
        self._bound.runtime.inject(self._info.entry_te, payload)


class BoundProgram:
    """A translated program deployed on a runtime.

    Entry methods are exposed as attributes: calling one injects the
    invocation into the dataflow. ``run()`` drains the pipeline;
    ``results(method)`` returns the values produced by the method's
    terminal TE (its ``return`` statements).
    """

    def __init__(self, translation: TranslationResult,
                 runtime: Runtime) -> None:
        self.translation = translation
        self.runtime = runtime

    def __getattr__(self, name: str) -> _EntryProxy:
        if name in self.translation.entries:
            return _EntryProxy(self, name)
        raise AttributeError(
            f"{self.translation.program_class.__name__} has no entry "
            f"method {name!r}"
        )

    def run(self, max_steps: int = 10_000_000) -> int:
        """Process until the pipeline is idle; returns items processed."""
        return self.runtime.run_until_idle(max_steps=max_steps)

    def call(self, method: str, *args: Any) -> None:
        """Explicit-name alternative to the attribute proxies."""
        _EntryProxy(self, method)(*args)

    def results(self, method: str) -> list[Any]:
        """Returned values of ``method``'s terminal task element."""
        info = self.translation.entry_info(method)
        return list(self.runtime.results.get(info.terminal_te, []))

    def state_of(self, field: str) -> list:
        """The live SE elements of one state field (one per instance)."""
        return [inst.element
                for inst in self.runtime.se_instances(field)]

"""The pipelined SDG execution engine (§3.3).

The engine materialises a validated SDG: every TE/SE spec becomes one or
more instances grouped onto :class:`~repro.runtime.node.PhysicalNode`
failure domains according to the four-step allocation algorithm. Data
items are then processed cooperatively (single-threaded, deterministic):
``inject`` feeds external input to entry TEs and ``run_until_idle``
drains the pipeline, dispatching TE outputs along dataflow edges with
the paper's four dispatch semantics.

Determinism note: the paper requires translated programs to be
deterministic so that recovery can re-execute computation (§4.1); the
engine honours the same contract by processing instances in a fixed
round-robin order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.allocation import allocate
from repro.core.dispatch import Dispatch
from repro.core.elements import AccessMode, StateKind, TaskContext
from repro.core.graph import SDG
from repro.errors import RuntimeExecutionError
from repro.runtime.envelope import (
    INPUT_EDGE,
    ChannelId,
    Envelope,
    NO_RESPONSE,
)
from repro.runtime.instances import (
    GatherState,
    SEInstance,
    StreamKey,
    TEInstance,
)
from repro.runtime.node import PhysicalNode
from repro.state import HashPartitioner
from repro.state.base import StateElement


@dataclass
class RuntimeConfig:
    """Deployment-time knobs of the runtime."""

    #: Initial instance count per SE (partition or replica count).
    se_instances: dict[str, int] = field(default_factory=dict)
    #: Custom routing partitioner per partitioned SE (e.g. a
    #: RangePartitioner); defaults to hash partitioning. The
    #: partitioner's fan-out fixes the SE's instance count.
    partitioners: dict[str, Any] = field(default_factory=dict)
    #: Initial instance count per *stateless* TE.
    te_instances: dict[str, int] = field(default_factory=dict)
    #: Enable the reactive bottleneck detector (§3.3).
    auto_scale: bool = False
    #: Inbox backlog per instance that flags a TE as a bottleneck.
    scale_threshold: int = 64
    #: Upper bound on instances created by auto-scaling.
    max_instances: int = 8
    #: Steps between bottleneck checks when auto-scaling.
    scale_check_every: int = 256
    #: Deep-copy payloads at send time. On a real cluster every hop
    #: serialises (§4.1 location independence), so a producer can never
    #: observe a consumer's mutations; in-process, shared references
    #: could. Enable to get wire-faithful isolation at a CPU cost.
    copy_payloads: bool = False

    def validate(self, sdg: "SDG") -> None:
        """Reject malformed deployment knobs before they misbehave.

        Called by :meth:`Runtime.deploy`; raising here turns a typo'd SE
        name or a zero scaling interval into a clear deploy-time error
        instead of a silently ignored setting.
        """
        for knob in ("scale_threshold", "max_instances",
                     "scale_check_every"):
            value = getattr(self, knob)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise RuntimeExecutionError(
                    f"RuntimeConfig.{knob} must be an integer >= 1, "
                    f"got {value!r}"
                )
        known_ses = set(sdg.states)
        unknown_ses = sorted(set(self.se_instances) - known_ses)
        if unknown_ses:
            raise RuntimeExecutionError(
                f"se_instances names unknown SEs {unknown_ses}; this "
                f"SDG declares {sorted(known_ses)}"
            )
        unknown_parts = sorted(set(self.partitioners) - known_ses)
        if unknown_parts:
            raise RuntimeExecutionError(
                f"partitioners names unknown SEs {unknown_parts}; this "
                f"SDG declares {sorted(known_ses)}"
            )
        known_tes = set(sdg.tasks)
        unknown_tes = sorted(set(self.te_instances) - known_tes)
        if unknown_tes:
            raise RuntimeExecutionError(
                f"te_instances names unknown TEs {unknown_tes}; this "
                f"SDG declares {sorted(known_tes)}"
            )
        for mapping, what in ((self.se_instances, "se_instances"),
                              (self.te_instances, "te_instances")):
            for name, count in mapping.items():
                if not isinstance(count, int) or isinstance(count, bool) \
                        or count < 1:
                    raise RuntimeExecutionError(
                        f"{what}[{name!r}] must be an integer >= 1, "
                        f"got {count!r}"
                    )


class Runtime:
    """Deploys and executes one SDG in-process."""

    def __init__(self, sdg: SDG, config: RuntimeConfig | None = None) -> None:
        self.sdg = sdg
        self.config = config or RuntimeConfig()
        self.nodes: dict[int, PhysicalNode] = {}
        #: Collected payloads of TEs without outgoing dataflows.
        self.results: dict[str, list[Any]] = {}
        self.total_steps = 0
        self._te_instances: dict[str, list[TEInstance | None]] = {}
        self._se_instances: dict[str, list[SEInstance | None]] = {}
        self._partitioners: dict[str, HashPartitioner] = {}
        #: Per-SE repartition counter. A checkpoint records the epoch it
        #: was taken under; restoring it under a different partitioning
        #: would resurrect keys the instance no longer owns, so recovery
        #: refuses stale-epoch checkpoints.
        self._se_epochs: dict[str, int] = {}
        self._node_key_map: dict[tuple[int, int], int] = {}
        self._next_node_id = 0
        self._rr: dict[Any, int] = {}
        self._request_ids = itertools.count(1)
        #: Per-entry global injection counter (see TEInstance.out_seq for
        #: why timestamps are per-stream, not per-channel).
        self._input_seq: dict[str, int] = {}
        self._input_buffers: dict[ChannelId, list[Envelope]] = {}
        self._rotor = 0
        self._terminal_seen: set = set()
        self._step_hooks: list = []
        self._crash_handlers: list = []
        self._deployed = False
        self._scale_events: list[tuple[int, str, int]] = []

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(self) -> "Runtime":
        """Validate, allocate and materialise the SDG. Returns self."""
        if self._deployed:
            raise RuntimeExecutionError("runtime already deployed")
        self.sdg.validate()
        self.config.validate(self.sdg)
        base = allocate(self.sdg)

        for se in self.sdg.states.values():
            custom = self.config.partitioners.get(se.name)
            if custom is not None:
                if se.kind is not StateKind.PARTITIONED:
                    raise RuntimeExecutionError(
                        f"SE {se.name!r} is {se.kind.value}; only "
                        f"partitioned SEs take a custom partitioner"
                    )
                n = custom.n_partitions
                configured = self.config.se_instances.get(se.name)
                if configured is not None and configured != n:
                    raise RuntimeExecutionError(
                        f"SE {se.name!r}: se_instances={configured} "
                        f"conflicts with the partitioner's "
                        f"{n} partitions"
                    )
            else:
                n = max(1, self.config.se_instances.get(se.name, 1))
            self._se_instances[se.name] = [
                SEInstance(se, i) for i in range(n)
            ]
            if se.kind is StateKind.PARTITIONED:
                self._partitioners[se.name] = (
                    custom if custom is not None else HashPartitioner(n)
                )

        for te in self.sdg.tasks.values():
            if te.state is not None:
                n = len(self._se_instances[te.state])
            else:
                n = max(1, self.config.te_instances.get(te.name, 1))
            self._te_instances[te.name] = [
                TEInstance(te, i, se_instance=None) for i in range(n)
            ]

        # Bind stateful TE instances to the same-index SE instance and
        # group everything onto nodes following the base allocation.
        for se_name, instances in self._se_instances.items():
            for se_inst in instances:
                node = self._node_for(base.node_of[se_name], se_inst.index)
                node.host_se(se_inst)
        for te_name, instances in self._te_instances.items():
            spec = self.sdg.task(te_name)
            for te_inst in instances:
                if spec.state is not None:
                    se_inst = self._se_instances[spec.state][te_inst.index]
                    te_inst.se_instance = se_inst
                    node = self.nodes[se_inst.node_id]
                else:
                    node = self._node_for(
                        base.node_of[te_name], te_inst.index
                    )
                node.host_te(te_inst)

        for te_name in self.sdg.tasks:
            if not self.sdg.successors(te_name):
                self.results.setdefault(te_name, [])
        self._deployed = True
        return self

    def _node_for(self, base_node: int, replica: int) -> PhysicalNode:
        key = (base_node, replica)
        if key not in self._node_key_map:
            node_id = self._next_node_id
            self._next_node_id += 1
            self._node_key_map[key] = node_id
            self.nodes[node_id] = PhysicalNode(node_id)
        return self.nodes[self._node_key_map[key]]

    def _fresh_node(self) -> PhysicalNode:
        node_id = self._next_node_id
        self._next_node_id += 1
        node = PhysicalNode(node_id)
        self.nodes[node_id] = node
        return node

    # ------------------------------------------------------------------
    # Instance accessors
    # ------------------------------------------------------------------

    def te_instances(self, te: str) -> list[TEInstance]:
        """Live instances of TE ``te`` (failed slots omitted)."""
        return [i for i in self._te_instances[te] if i is not None]

    def te_instance(self, te: str, index: int) -> TEInstance | None:
        instances = self._te_instances[te]
        return instances[index] if index < len(instances) else None

    def te_slot_count(self, te: str) -> int:
        return len(self._te_instances[te])

    def se_instances(self, se: str) -> list[SEInstance]:
        return [i for i in self._se_instances[se] if i is not None]

    def se_instance(self, se: str, index: int) -> SEInstance | None:
        instances = self._se_instances[se]
        return instances[index] if index < len(instances) else None

    def alive_nodes(self) -> list[PhysicalNode]:
        return [n for n in self.nodes.values() if n.alive]

    def is_idle(self) -> bool:
        """Whether no envelope is waiting in any live inbox."""
        return all(
            not inst.inbox
            for insts in self._te_instances.values()
            for inst in insts
            if inst is not None and self.nodes[inst.node_id].alive
        )

    def all_te_instances(self) -> Iterator[TEInstance]:
        for instances in self._te_instances.values():
            for instance in instances:
                if instance is not None:
                    yield instance

    # ------------------------------------------------------------------
    # External input
    # ------------------------------------------------------------------

    def _require_deployed(self) -> None:
        if not self._deployed:
            raise RuntimeExecutionError(
                "runtime not deployed; call deploy() first"
            )

    def inject(self, entry: str, payload: Any) -> None:
        """Feed one external item to entry TE ``entry`` (§3.1 dataflows).

        Items are buffered source-side like any other dataflow so that a
        failed entry TE can be replayed from "upstream" (here: the
        client-side input log).
        """
        self._require_deployed()
        spec = self.sdg.task(entry)
        if not spec.is_entry:
            raise RuntimeExecutionError(f"TE {entry!r} is not an entry point")
        if spec.entry_key_fn is not None:
            index = self._keyed_index(spec, spec.entry_key_fn(payload))
            self._inject_to(entry, index, payload, None, None)
        elif spec.access is AccessMode.GLOBAL:
            request_id = next(self._request_ids)
            slots = self.te_slot_count(entry)
            for index in range(slots):
                self._inject_to(entry, index, payload, request_id, slots)
        else:
            slots = self.te_slot_count(entry)
            rr = self._rr.get(("input", entry), 0)
            self._rr[("input", entry)] = rr + 1
            self._inject_to(entry, rr % slots, payload, None, None)

    def _inject_to(self, entry: str, index: int, payload: Any,
                   request_id: int | None, expected: int | None) -> None:
        if self.config.copy_payloads:
            import copy as _copy

            payload = _copy.deepcopy(payload)
        channel = ChannelId(INPUT_EDGE, "__input__", 0, entry, index)
        seq = self._input_seq.get(entry, 0) + 1
        self._input_seq[entry] = seq
        envelope = Envelope(payload=payload, ts=seq, channel=channel,
                            request_id=request_id,
                            expected_responses=expected)
        self._input_buffers.setdefault(channel, []).append(envelope)
        self._deliver(envelope)

    def _keyed_index(self, spec, key: Any) -> int:
        """Partition index for keyed dispatch into TE ``spec``."""
        if spec.state is not None and spec.state in self._partitioners:
            return self._partitioners[spec.state].partition(key)
        return HashPartitioner(self.te_slot_count(spec.name)).partition(key)

    # ------------------------------------------------------------------
    # Delivery and processing
    # ------------------------------------------------------------------

    def _deliver(self, envelope: Envelope) -> bool:
        """Append to the destination inbox; drop if the node is dead.

        Dropped envelopes are not lost: they stay in the producer-side
        output buffer and are replayed during recovery.
        """
        channel = envelope.channel
        instance = self.te_instance(channel.dst_te, channel.dst_instance)
        if instance is None or not self.nodes[instance.node_id].alive:
            return False
        instance.inbox.append(envelope)
        return True

    def step(self) -> bool:
        """Process one envelope on one TE instance; False when idle.

        A node with ``speed < 1`` is throttled deterministically: each
        scheduling visit earns it ``speed`` credit and an item is only
        served once a full credit accrues, inflating its per-item
        service time by ``1/speed``. When every pending item sits on a
        throttled node the step still counts (a *stall tick*): logical
        time passes and hooks run, which is what lets the failure
        detector observe a stalled node.
        """
        self._require_deployed()
        instances = [
            inst for inst in self.all_te_instances()
            if self.nodes[inst.node_id].alive
        ]
        if not instances:
            return False
        n = len(instances)
        throttled = False
        for offset in range(n):
            instance = instances[(self._rotor + offset) % n]
            if not instance.inbox:
                continue
            node = self.nodes[instance.node_id]
            if node.speed < 1.0:
                node.credit += max(node.speed, 0.0)
                if node.credit < 1.0:
                    throttled = True
                    continue
                node.credit -= 1.0
            self._rotor = (self._rotor + offset + 1) % n
            envelope = instance.inbox.popleft()
            try:
                self._process(instance, envelope)
            except RuntimeExecutionError as exc:
                if not self._crash_handlers:
                    raise
                # Supervised mode: a task crash kills its host node (the
                # envelope survives upstream and is replayed during
                # recovery) and the handlers are told, instead of the
                # whole pipeline aborting.
                if self.nodes[instance.node_id].alive:
                    self.fail_node(instance.node_id)
                for handler in list(self._crash_handlers):
                    handler(self, instance, envelope, exc)
            self._tick()
            return True
        if throttled:
            self._tick()
            return True
        return False

    def _tick(self) -> None:
        """Advance logical time by one step and run the step hooks."""
        self.total_steps += 1
        for hook in list(self._step_hooks):
            hook(self)

    def add_step_hook(self, hook) -> None:
        """Register ``hook(runtime)`` to run after every processed item.

        Hooks drive cross-cutting machinery that must observe logical
        time: periodic checkpoint scheduling, monitors, fault injectors.
        """
        self._step_hooks.append(hook)

    def remove_step_hook(self, hook) -> None:
        self._step_hooks.remove(hook)

    def add_crash_handler(self, handler) -> None:
        """Register ``handler(runtime, instance, envelope, exc)``.

        While at least one handler is registered, a task-code exception
        no longer propagates out of :meth:`step`; the hosting node is
        failed (crash-stop semantics) and every handler is informed —
        the failure detector uses this as its immediate crash report.
        """
        self._crash_handlers.append(handler)

    def remove_crash_handler(self, handler) -> None:
        self._crash_handlers.remove(handler)

    def run_until_idle(self, max_steps: int = 10_000_000) -> int:
        """Drain all inboxes; returns the number of items processed."""
        steps = 0
        while steps < max_steps:
            if (
                self.config.auto_scale
                and steps
                and steps % self.config.scale_check_every == 0
            ):
                self._maybe_scale()
            if not self.step():
                return steps
            steps += 1
        raise RuntimeExecutionError(
            f"pipeline did not become idle within {max_steps} steps"
        )

    def _process(self, instance: TEInstance, envelope: Envelope) -> None:
        if instance.is_duplicate(envelope):
            return
        spec = instance.spec
        if spec.is_merge and envelope.request_id is not None:
            self._process_gather(instance, envelope)
            return
        outputs = self._invoke(instance, envelope.payload)
        instance.mark_processed(envelope)
        self._dispatch(instance, outputs, envelope)
        self.nodes[instance.node_id].items_processed += 1
        instance.processed_count += 1

    def _process_gather(self, instance: TEInstance,
                        envelope: Envelope) -> None:
        """Accumulate responses behind the merge barrier (§3.2/§4.2)."""
        request_id = envelope.request_id
        expected = envelope.expected_responses or 1
        gather = instance.pending_gathers.setdefault(
            request_id, GatherState(expected=expected)
        )
        if envelope.payload is not NO_RESPONSE:
            gather.payloads.append(envelope.payload)
        gather.received += 1
        instance.mark_processed(envelope)
        if not gather.complete:
            return
        del instance.pending_gathers[request_id]
        outputs = self._invoke(instance, gather.payloads)
        self._dispatch(instance, outputs, envelope)
        self.nodes[instance.node_id].items_processed += 1
        instance.processed_count += 1

    def _invoke(self, instance: TEInstance, payload: Any) -> list[Any]:
        element = (
            instance.se_instance.element
            if instance.se_instance is not None
            else None
        )
        slots = self.te_slot_count(instance.name)
        ctx = TaskContext(state=element, instance_id=instance.index,
                          n_instances=slots)
        if instance.crash_next:
            instance.crash_next = False
            raise RuntimeExecutionError(
                f"TE {instance.name!r}[{instance.index}] crashed "
                f"mid-item on {payload!r} (injected fault)"
            )
        try:
            returned = instance.spec.fn(ctx, payload)
        except Exception as exc:
            raise RuntimeExecutionError(
                f"TE {instance.name!r}[{instance.index}] failed on "
                f"{payload!r}: {exc}"
            ) from exc
        outputs = ctx.drain()
        if returned is not None:
            outputs.append(returned)
        return outputs

    # ------------------------------------------------------------------
    # Dispatching (§4.2 semantics)
    # ------------------------------------------------------------------

    def _dispatch(self, instance: TEInstance, outputs: list[Any],
                  cause: Envelope) -> None:
        edges = self.sdg.successors(instance.name)
        if not edges:
            # The result consumer is the most-downstream party: it too
            # discards duplicates regenerated by deterministic replay.
            from repro.runtime.instances import stream_key

            if cause.request_id is not None:
                seen_key = (instance.name, "req", cause.request_id,
                            instance.index)
            else:
                seen_key = (instance.name, stream_key(cause.channel),
                            cause.ts)
            if seen_key in self._terminal_seen:
                return
            self._terminal_seen.add(seen_key)
            bucket = self.results.setdefault(instance.name, [])
            bucket.extend(outputs)
            return
        for edge_index, edge in self._indexed_successors(instance.name):
            if edge.dispatch is Dispatch.ALL_TO_ONE:
                self._dispatch_gather(instance, edge_index, edge, outputs,
                                      cause)
            elif edge.dispatch is Dispatch.ONE_TO_ALL:
                self._dispatch_broadcast(instance, edge_index, edge, outputs)
            elif edge.dispatch is Dispatch.KEY_PARTITIONED:
                for item in outputs:
                    dst = self._keyed_index(self.sdg.task(edge.dst),
                                            edge.key_fn(item))
                    self._send(instance, edge_index, edge.dst, dst, item,
                               cause.request_id, cause.expected_responses)
            else:  # ONE_TO_ANY round-robin
                for item in outputs:
                    slots = self.te_slot_count(edge.dst)
                    # The destination is derived from the producer's own
                    # per-edge send counter — producer-local state that
                    # is checkpointed and restored — so deterministic
                    # re-execution after recovery reproduces the exact
                    # original routing and duplicates are recognised.
                    sent = instance.out_seq.get(edge_index, 0)
                    self._send(instance, edge_index, edge.dst,
                               sent % slots, item, cause.request_id,
                               cause.expected_responses)

    def _dispatch_gather(self, instance: TEInstance, edge_index: int,
                         edge, outputs: list[Any], cause: Envelope) -> None:
        if len(outputs) > 1:
            raise RuntimeExecutionError(
                f"TE {instance.name!r} produced {len(outputs)} outputs for "
                f"one request on gather edge {edge.src}->{edge.dst}; "
                f"global-access TEs must emit at most one item per input"
            )
        if cause.request_id is None:
            # Not part of a global-access round trip: forward directly.
            for item in outputs:
                self._send(instance, edge_index, edge.dst, 0, item,
                           None, None)
            return
        item = outputs[0] if outputs else NO_RESPONSE
        self._send(instance, edge_index, edge.dst, 0, item,
                   cause.request_id, cause.expected_responses)

    def _dispatch_broadcast(self, instance: TEInstance, edge_index: int,
                            edge, outputs: list[Any]) -> None:
        slots = self.te_slot_count(edge.dst)
        for item in outputs:
            request_id = next(self._request_ids)
            expected = len(self.te_instances(edge.dst))
            for dst in range(slots):
                self._send(instance, edge_index, edge.dst, dst, item,
                           request_id, expected)

    def _indexed_successors(self, te: str):
        for index, edge in enumerate(self.sdg.dataflows):
            if edge.src == te:
                yield index, edge

    def _send(self, src: TEInstance, edge_index: int, dst_te: str,
              dst_index: int, payload: Any, request_id: int | None,
              expected: int | None) -> None:
        if self.config.copy_payloads and payload is not NO_RESPONSE:
            import copy as _copy

            payload = _copy.deepcopy(payload)
        channel = ChannelId(edge_index, src.name, src.index,
                            dst_te, dst_index)
        ts = src.next_seq(channel)
        envelope = Envelope(payload=payload, ts=ts, channel=channel,
                            request_id=request_id,
                            expected_responses=expected)
        src.record_output(envelope)
        self._deliver(envelope)

    # ------------------------------------------------------------------
    # Failure injection and replay plumbing (used by repro.recovery)
    # ------------------------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Kill a node: inboxes, SE contents and output buffers are lost."""
        node = self.nodes[node_id]
        node.fail()
        for key in list(node.te_instances):
            te_name, index = key
            self._te_instances[te_name][index] = None
        for key in list(node.se_instances):
            se_name, index = key
            self._se_instances[se_name][index] = None

    def install_replacement(
        self,
        te_replacements: list[TEInstance],
        se_replacements: list[SEInstance],
    ) -> PhysicalNode:
        """Host replacement instances on a fresh node (recovery R-steps).

        Slot lists grow on demand so that m-to-n recovery can restore a
        single failed instance as several new partitioned instances.
        """
        node = self._fresh_node()
        for se_inst in se_replacements:
            slots = self._se_instances[se_inst.name]
            while len(slots) <= se_inst.index:
                slots.append(None)
            slots[se_inst.index] = se_inst
            node.host_se(se_inst)
        for te_inst in te_replacements:
            spec = te_inst.spec
            if spec.state is not None:
                te_inst.se_instance = self._se_instances[spec.state][
                    te_inst.index
                ]
            slots = self._te_instances[te_inst.name]
            while len(slots) <= te_inst.index:
                slots.append(None)
            slots[te_inst.index] = te_inst
            node.host_te(te_inst)
        return node

    def set_partitioner(self, se_name: str,
                        partitioner: HashPartitioner) -> None:
        """Replace the routing partitioner of a partitioned SE.

        Used by m-to-n recovery when a failed SE instance is restored as
        ``n`` partitions, changing the partition count.
        """
        self._partitioners[se_name] = partitioner
        self._se_epochs[se_name] = self.se_epoch(se_name) + 1

    def se_epoch(self, se_name: str) -> int:
        """The SE's current partitioning epoch (0 until repartitioned)."""
        return self._se_epochs.get(se_name, 0)

    def replay_into(self, dst_te: str, dst_index: int) -> int:
        """Re-deliver every buffered envelope targeting one instance.

        Covers both upstream TE output buffers and the client-side input
        log. The receiving instance discards duplicates via ``last_seen``.
        Returns the number of envelopes re-delivered.
        """
        count = 0
        for channel, buffered in self._input_buffers.items():
            if channel.dst_te == dst_te and channel.dst_instance == dst_index:
                for envelope in buffered:
                    if self._deliver(envelope):
                        count += 1
        for producer in self.all_te_instances():
            if not self.nodes[producer.node_id].alive:
                continue
            for channel, buffered in producer.output_buffers.items():
                if (
                    channel.dst_te == dst_te
                    and channel.dst_instance == dst_index
                ):
                    for envelope in buffered:
                        if self._deliver(envelope):
                            count += 1
        return count

    def replay_rerouted(self, dst_te: str,
                        recovered: set[int]) -> int:
        """Replay all buffered envelopes towards recovered instances.

        Like :meth:`replay_into`, but recomputes keyed destinations under
        the *current* partitioner — required when a failed SE was
        restored onto a different number of instances (m-to-n recovery,
        Fig. 4). Envelopes whose recomputed destination is not in
        ``recovered`` are skipped (their instance never failed).
        """
        spec = self.sdg.task(dst_te)
        count = 0

        def route(envelope: Envelope) -> int:
            channel = envelope.channel
            if channel.edge_index == INPUT_EDGE:
                if spec.entry_key_fn is not None:
                    return self._keyed_index(
                        spec, spec.entry_key_fn(envelope.payload)
                    )
                return min(channel.dst_instance,
                           self.te_slot_count(dst_te) - 1)
            edge = self.sdg.dataflows[channel.edge_index]
            if edge.key_fn is not None:
                return self._keyed_index(spec, edge.key_fn(envelope.payload))
            return min(channel.dst_instance,
                       self.te_slot_count(dst_te) - 1)

        streams: list[Envelope] = []
        for channel, buffered in self._input_buffers.items():
            if channel.dst_te == dst_te:
                streams.extend(buffered)
        for producer in self.all_te_instances():
            if not self.nodes[producer.node_id].alive:
                continue
            for channel, buffered in producer.output_buffers.items():
                if channel.dst_te == dst_te:
                    streams.extend(buffered)
        # Deliver in per-stream timestamp order. One logical stream may
        # span several buffered channels after a repartition (the same
        # source injected to different destination indices across
        # epochs); since ``last_seen`` is per *stream*, out-of-order
        # delivery across those channels would make the dedup filter
        # drop genuinely unprocessed items during a full log replay.
        streams.sort(key=lambda e: (e.channel.edge_index,
                                    e.channel.src_te,
                                    e.channel.src_instance, e.ts))
        for envelope in streams:
            index = route(envelope)
            if index not in recovered:
                continue
            rerouted = envelope.with_channel(
                envelope.channel.reroute(index), envelope.ts
            )
            if self._deliver(rerouted):
                count += 1
        return count

    def replay_from(self, instance: TEInstance) -> int:
        """Re-send a recovered instance's own output buffers downstream."""
        count = 0
        for buffered in instance.output_buffers.values():
            for envelope in buffered:
                if self._deliver(envelope):
                    count += 1
        return count

    def trim_stream(self, stream: StreamKey, dst_te: str, dst_index: int,
                    up_to_ts: int) -> int:
        """Trim a producer's output buffer after a downstream checkpoint."""
        edge_index, src_te, src_index = stream
        channel = ChannelId(edge_index, src_te, src_index, dst_te, dst_index)
        if edge_index == INPUT_EDGE:
            buffered = self._input_buffers.get(channel)
            if buffered is None:
                return 0
            keep = [e for e in buffered if e.ts > up_to_ts]
            dropped = len(buffered) - len(keep)
            self._input_buffers[channel] = keep
            return dropped
        producer = self.te_instance(src_te, src_index)
        if producer is None:
            return 0
        return producer.trim_output_buffer(channel, up_to_ts)

    def input_buffers_snapshot(self) -> dict[ChannelId, list[Envelope]]:
        return {c: list(b) for c, b in self._input_buffers.items()}

    # ------------------------------------------------------------------
    # Runtime parallelism (§3.3)
    # ------------------------------------------------------------------

    @property
    def scale_events(self) -> list[tuple[int, str, int]]:
        """(step, te_name, new_instance_count) for each scale action."""
        return list(self._scale_events)

    def _maybe_scale(self) -> None:
        from repro.runtime.scaling import BottleneckDetector

        detector = BottleneckDetector(
            threshold=self.config.scale_threshold,
            max_instances=self.config.max_instances,
        )
        for te_name in detector.bottlenecks(self):
            try:
                self.scale_up(te_name)
            except RuntimeExecutionError:
                # E.g. a checkpoint is mid-flight on the SE: skip this
                # round; the detector will flag the TE again.
                continue

    def scale_up(self, te_name: str) -> bool:
        """Add one instance to TE ``te_name``, distributing its SE (§3.3).

        Partitioned SEs are re-split across the grown instance set;
        partial SEs gain a fresh replica. Stateless TEs simply gain an
        instance. Returns False when the TE cannot be scaled further.
        """
        spec = self.sdg.task(te_name)
        if spec.is_merge:
            return False
        current = self.te_slot_count(te_name)
        if current >= self.config.max_instances:
            return False
        if spec.state is None:
            instance = TEInstance(spec, current)
            self._te_instances[te_name].append(instance)
            self._fresh_node().host_te(instance)
        else:
            se_spec = self.sdg.state(spec.state)
            if se_spec.kind is StateKind.PARTIAL:
                self._add_partial_instance(spec.state)
            else:
                self._repartition(spec.state, current + 1)
        self._scale_events.append(
            (self.total_steps, te_name, self.te_slot_count(te_name))
        )
        return True

    def _add_partial_instance(self, se_name: str) -> None:
        """Create one more partial replica and bind new TE instances."""
        spec = self.sdg.state(se_name)
        index = len(self._se_instances[se_name])
        se_inst = SEInstance(spec, index)
        self._se_instances[se_name].append(se_inst)
        node = self._fresh_node()
        node.host_se(se_inst)
        for te in self.sdg.tasks_accessing(se_name):
            te_inst = TEInstance(te, index, se_instance=se_inst)
            self._te_instances[te.name].append(te_inst)
            node.host_te(te_inst)

    def _repartition(self, se_name: str, n_new: int) -> None:
        """Re-split a partitioned SE over ``n_new`` instances.

        Queued envelopes for the accessing TEs are re-routed under the
        new partitioner so keyed items still meet their partition.
        """
        spec = self.sdg.state(se_name)
        old_instances = self.se_instances(se_name)
        if len(old_instances) != len(self._se_instances[se_name]):
            raise RuntimeExecutionError(
                f"cannot repartition SE {se_name!r} while an instance is "
                f"failed; recover first"
            )
        if any(inst.element.checkpoint_active for inst in old_instances):
            raise RuntimeExecutionError(
                f"cannot repartition SE {se_name!r} while a checkpoint "
                f"is in progress; complete or abort it first"
            )
        merged: StateElement = type(old_instances[0].element).merge_partitions(
            [inst.element for inst in old_instances]
        )
        # Rescale the *existing* strategy; a RangePartitioner refuses
        # (its boundaries are semantic) and the scale-up fails loudly.
        partitioner = self._partitioners[se_name].rescaled(n_new)
        self._partitioners[se_name] = partitioner
        self._se_epochs[se_name] = self.se_epoch(se_name) + 1

        pending: list[Envelope] = []
        accessing = self.sdg.tasks_accessing(se_name)
        for te in accessing:
            for te_inst in self.te_instances(te.name):
                while te_inst.inbox:
                    pending.append(te_inst.inbox.popleft())

        for index in range(n_new):
            part = merged.extract_partition(partitioner, index)
            if index < len(self._se_instances[se_name]):
                se_inst = self._se_instances[se_name][index]
                se_inst.element = part
            else:
                se_inst = SEInstance(spec, index, element=part)
                self._se_instances[se_name].append(se_inst)
                node = self._fresh_node()
                node.host_se(se_inst)
                for te in accessing:
                    te_inst = TEInstance(te, index, se_instance=se_inst)
                    self._te_instances[te.name].append(te_inst)
                    node.host_te(te_inst)

        for envelope in pending:
            self._resend_after_reroute(envelope)

    def _resend_after_reroute(self, envelope: Envelope) -> None:
        """Re-address a queued envelope after a repartition.

        The envelope is re-*sent* (fresh sequence number on the new
        channel) rather than re-delivered with its old stamp: per-stream
        timestamps are only monotonic towards a fixed destination, so an
        old stamp arriving at a new destination could be mistaken for a
        duplicate. The stale copy is removed from the producer-side
        replay buffer to keep recovery consistent.
        """
        channel = envelope.channel
        spec = self.sdg.task(channel.dst_te)
        if channel.edge_index == INPUT_EDGE:
            buffered = self._input_buffers.get(channel)
            if buffered is not None and envelope in buffered:
                buffered.remove(envelope)
            if spec.entry_key_fn is not None:
                index = self._keyed_index(
                    spec, spec.entry_key_fn(envelope.payload)
                )
            else:
                index = channel.dst_instance
            self._inject_to(channel.dst_te, index, envelope.payload,
                            envelope.request_id,
                            envelope.expected_responses)
            return
        edge = self.sdg.dataflows[channel.edge_index]
        producer = self.te_instance(channel.src_te, channel.src_instance)
        if producer is not None:
            buffer = producer.output_buffers.get(channel)
            if buffer is not None and envelope in buffer:
                buffer.remove(envelope)
        if edge.key_fn is not None:
            index = self._keyed_index(spec, edge.key_fn(envelope.payload))
        else:
            index = min(channel.dst_instance,
                        self.te_slot_count(channel.dst_te) - 1)
        if producer is not None:
            self._send(producer, channel.edge_index, channel.dst_te, index,
                       envelope.payload, envelope.request_id,
                       envelope.expected_responses)
        else:
            # Producer lost to a failure: deliver with the old stamp so
            # downstream dedup against a future replay still works.
            self._deliver(
                envelope.with_channel(channel.reroute(index), envelope.ts)
            )

"""Unit tests for state-access extraction and classification (step 3)."""

import ast

import pytest

from repro.annotations import Partial, Partitioned
from repro.core.elements import AccessMode
from repro.errors import TranslationError
from repro.state import KeyValueMap, Matrix
from repro.translate.accesses import analyse_statement

FIELDS = {
    "user_item": Partitioned(Matrix, key="user"),
    "co_occ": Partial(Matrix),
    "table": Partitioned(KeyValueMap, key="key"),
}


def first_stmt(code: str) -> ast.stmt:
    return ast.parse(code).body[0]


class TestClassification:
    def test_partitioned_access(self):
        info = analyse_statement(
            first_stmt("self.user_item.set_element(user, item, r)"), FIELDS
        )
        assert len(info.accesses) == 1
        access = info.accesses[0]
        assert access.field == "user_item"
        assert access.mode is AccessMode.PARTITIONED
        assert access.key == "user"

    def test_local_access_on_partial(self):
        info = analyse_statement(
            first_stmt("self.co_occ.set_element(i, j, 1)"), FIELDS
        )
        assert info.accesses[0].mode is AccessMode.LOCAL

    def test_global_access(self):
        info = analyse_statement(
            first_stmt("x = global_(self.co_occ).multiply(v)"), FIELDS
        )
        assert info.accesses[0].mode is AccessMode.GLOBAL

    def test_accesses_deduplicated(self):
        stmt = first_stmt(
            "self.co_occ.set_element(a, b, self.co_occ.get_element(a, b))"
        )
        info = analyse_statement(stmt, FIELDS)
        assert len(info.accesses) == 1

    def test_compound_statement_accesses_found(self):
        stmt = first_stmt(
            "for i in range(10):\n"
            "    self.co_occ.set_element(i, i, 1)\n"
        )
        info = analyse_statement(stmt, FIELDS)
        assert info.accesses[0].field == "co_occ"

    def test_stateless_statement(self):
        info = analyse_statement(first_stmt("x = y + 1"), FIELDS)
        assert info.accesses == []
        assert info.merge is None


class TestMergeDetection:
    def test_merge_call_detected(self):
        info = analyse_statement(
            first_stmt("rec = self.merge(collection(user_rec))"), FIELDS
        )
        assert info.merge is not None
        assert info.merge.method == "merge"
        assert info.merge.collection_var == "user_rec"

    def test_helper_call_without_collection_is_not_merge(self):
        info = analyse_statement(
            first_stmt("x = self.helper(a, b)"), FIELDS
        )
        assert info.merge is None
        assert info.helper_calls == ["helper"]

    def test_collection_outside_merge_rejected(self):
        with pytest.raises(TranslationError, match="collection"):
            analyse_statement(first_stmt("x = collection(y)"), FIELDS)

    def test_merge_with_extra_single_valued_args_allowed(self):
        info = analyse_statement(
            first_stmt("x = self.merge(collection(y), z)"), FIELDS
        )
        assert info.merge.collection_var == "y"

    def test_collection_must_come_first(self):
        with pytest.raises(TranslationError, match="first argument"):
            analyse_statement(
                first_stmt("x = self.merge(z, collection(y))"), FIELDS
            )

    def test_second_collection_rejected(self):
        with pytest.raises(TranslationError, match="only the first"):
            analyse_statement(
                first_stmt(
                    "x = self.merge(collection(y), collection(z))"
                ),
                FIELDS,
            )

    def test_collection_of_expression_rejected(self):
        with pytest.raises(TranslationError, match="single local variable"):
            analyse_statement(
                first_stmt("x = self.merge(collection(y + 1))"), FIELDS
            )


class TestInvalidAccesses:
    def test_two_state_fields_in_one_statement_rejected(self):
        with pytest.raises(TranslationError, match="multiple state"):
            analyse_statement(
                first_stmt(
                    "self.table.put(k, self.co_occ.get_element(0, 0))"
                ),
                FIELDS,
            )

    def test_mixed_modes_on_one_field_rejected(self):
        with pytest.raises(TranslationError, match="mixes access modes"):
            analyse_statement(
                first_stmt(
                    "x = global_(self.co_occ).multiply("
                    "self.co_occ.get_row(0))"
                ),
                FIELDS,
            )

    def test_unknown_self_attribute_rejected(self):
        with pytest.raises(TranslationError, match="explicit state"):
            analyse_statement(first_stmt("x = self.mystery"), FIELDS)

    def test_global_on_partitioned_rejected(self):
        with pytest.raises(TranslationError, match="Partial"):
            analyse_statement(
                first_stmt("x = global_(self.user_item)"), FIELDS
            )

    def test_global_of_non_field_rejected(self):
        with pytest.raises(TranslationError, match="annotated state"):
            analyse_statement(first_stmt("x = global_(y)"), FIELDS)

"""Intentionally-broken programs, one per ``sdglint`` diagnostic code.

Each module holds a minimal annotated program (or SDG builder) that
triggers exactly the diagnostic named by the module, and nothing else.
``clean`` is the negative control: a program every pass must accept.
The corpus doubles as executable documentation of the diagnostics —
``docs/analysis.md`` reproduces these examples.
"""

"""The SDG runtime: materialised, pipelined execution (§3.3).

Unlike scheduled dataflow systems, an SDG is *materialised*: every task
element is instantiated on its node(s) before data flows, items are
pipelined TE-to-TE without intermediate materialisation, and the number
of TE instances changes reactively at runtime in response to bottlenecks
and stragglers.

This package executes SDGs for real, as five layers behind the
:class:`Runtime` facade (see ``docs/architecture.md``):

* **deployment** (:class:`Topology`) — instance materialisation, node
  placement, partitioners and repartition epochs;
* **scheduling** (:class:`Scheduler` policies) — which instance serves
  the next item, plus straggler-credit throttling;
* **transport** (:class:`Transport`) — channels, inbox delivery,
  payload isolation and backpressure reporting;
* **dispatch** (:class:`Dispatcher`) — the paper's four routing
  semantics over a deploy-time successor index;
* **substrate** (:class:`ExecutionSubstrate`) — where the step loop
  actually runs: the deterministic in-process loop (default) or
  shared-nothing forked worker processes over the pickle wire
  (:class:`~repro.runtime.multiprocess.MultiprocessSubstrate`).

Logical nodes hold TE and SE instances, dataflow edges become channels
with upstream output buffers (retained for replay-based recovery), and
``@Global`` access is implemented with broadcast + gather barriers.
"""

from repro.runtime.deployment import Topology, WorkerPlacement
from repro.runtime.detector import DetectionEvent, FailureDetector
from repro.runtime.dispatcher import Dispatcher
from repro.runtime.engine import Runtime, RuntimeConfig
from repro.runtime.envelope import Envelope, NO_RESPONSE
from repro.runtime.monitor import RuntimeMonitor, Sample
from repro.runtime.scaling import BottleneckDetector
from repro.runtime.scheduler import (
    LongestQueueScheduler,
    RoundRobinScheduler,
    SCHEDULERS,
    Scheduler,
)
from repro.runtime.substrate import (
    ExecutionSubstrate,
    InProcessSubstrate,
    SUBSTRATES,
    resolve_substrate,
)
from repro.runtime.transport import Channel, Transport

__all__ = [
    "BottleneckDetector",
    "Channel",
    "DetectionEvent",
    "Dispatcher",
    "Envelope",
    "ExecutionSubstrate",
    "FailureDetector",
    "InProcessSubstrate",
    "LongestQueueScheduler",
    "NO_RESPONSE",
    "RoundRobinScheduler",
    "Runtime",
    "RuntimeConfig",
    "RuntimeMonitor",
    "SCHEDULERS",
    "SUBSTRATES",
    "Sample",
    "Scheduler",
    "Topology",
    "Transport",
    "WorkerPlacement",
    "resolve_substrate",
]

"""Performance models for the paper's evaluation (§6).

The functional runtime in :mod:`repro.runtime` executes SDGs for real,
but it cannot reproduce cluster-scale *performance* numbers on one
machine. This package provides the discrete-time cost models used by the
benchmark harness to regenerate the paper's figures: the mechanisms
(synchronous vs asynchronous checkpointing, micro-batching vs
pipelining, m-to-n parallel recovery, reactive scaling) are modelled
explicitly, so the *shapes* of the published curves — who wins, by what
factor, where the crossovers fall — emerge from the mechanism, not from
curve fitting.

Every model is deterministic and unit-tested; the benchmarks sweep their
parameters and assert the paper's qualitative results.
"""

from repro.simulation.batching import (
    microbatch_throughput,
    pipelined_throughput,
    scaling_throughput,
    sustainable,
)
from repro.simulation.events import Event, EventLoop
from repro.simulation.lifetime import (
    LifetimeConfig,
    LifetimeResult,
    simulate_lifetime,
)
from repro.simulation.metrics import (
    CheckpointCycle,
    CheckpointTraffic,
    LatencyRecorder,
    candlestick,
)
from repro.simulation.recovery_model import (
    RecoveryParams,
    deployment_time,
    recovery_time,
)
from repro.simulation.stateful_node import (
    CheckpointPolicy,
    NodeParams,
    SimResult,
    simulate_cluster,
    simulate_node,
)
from repro.simulation.stragglers import (
    StragglerScenario,
    simulate_stragglers,
)

__all__ = [
    "CheckpointCycle",
    "CheckpointPolicy",
    "CheckpointTraffic",
    "Event",
    "EventLoop",
    "LatencyRecorder",
    "LifetimeConfig",
    "LifetimeResult",
    "NodeParams",
    "RecoveryParams",
    "SimResult",
    "StragglerScenario",
    "candlestick",
    "simulate_lifetime",
    "deployment_time",
    "microbatch_throughput",
    "pipelined_throughput",
    "recovery_time",
    "scaling_throughput",
    "simulate_cluster",
    "simulate_node",
    "simulate_stragglers",
    "sustainable",
]

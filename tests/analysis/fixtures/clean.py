"""Negative control: a program every ``sdglint`` pass must accept.

Exercises the surface the passes inspect — partitioned and partial
state, a local RMW that stays inside its block, a global_ read
reconciled by an order-insensitive merge, keyed accesses whose key is
never rebound, and entry parameters that are all consumed.
"""

from repro.annotations import Partial, Partitioned, collection, entry, global_
from repro.program import SDGProgram
from repro.state import KeyValueMap


class CleanCounters(SDGProgram):
    """A KV store with a replicated store-counter sidecar."""

    table = Partitioned(KeyValueMap, key="key")
    tally = Partial(KeyValueMap)

    @entry
    def store(self, key, value):
        self.table.put(key, value)
        self.tally.increment("stores", 1)

    @entry
    def stored_total(self, key):
        current = self.table.get(key)
        count = global_(self.tally).get("stores")
        total = self.merge(collection(count))
        return (key, current, total)

    def merge(self, counts):
        total = 0
        for cur in counts:
            if cur is not None:
                total = total + cur
        return total

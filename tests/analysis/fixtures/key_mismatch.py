"""SDG304: the partition key variable is redefined mid-method.

``key`` routes the entry dispatch, but the first TE rebinds it to
``alias`` before the final keyed access — the delete can address a
different partition than the put, splitting one logical key across
partitions of different provenance (§3.2 unique partitioning).
"""

from repro.annotations import Partial, Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class KeyDrift(SDGProgram):
    """Rebinds the routing key between two keyed accesses."""

    table = Partitioned(KeyValueMap, key="key")
    audit = Partial(KeyValueMap)

    @entry
    def relabel(self, key, alias):
        self.table.put(key, alias)
        key = alias
        self.audit.put("seen", 1)
        self.table.delete(key)

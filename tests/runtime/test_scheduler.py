"""Unit tests for the scheduling layer.

Covers policy order (round-robin rotor vs longest-queue), straggler
credit, policy resolution from the config knob, and — critically — a
determinism proof that :class:`RoundRobinScheduler` selects in exactly
the order of the seed engine's inlined step loop, so recovery replay
order is unchanged by the layered refactor.
"""

import pytest

from repro.core import SDG
from repro.errors import RuntimeExecutionError
from repro.runtime import (
    InProcessSubstrate,
    LongestQueueScheduler,
    RoundRobinScheduler,
    Runtime,
    RuntimeConfig,
    SCHEDULERS,
)
from repro.runtime.instances import TEInstance
from repro.runtime.node import PhysicalNode
from repro.runtime.scheduler import resolve_scheduler
from repro.testing import build_kv_sdg, noop


def make_instances(n, items_per_instance):
    """``n`` instances of one stateless TE, each hosted on its own node."""
    sdg = SDG("sched")
    spec = sdg.add_task("work", noop, is_entry=True)
    nodes = {}
    instances = []
    for i in range(n):
        node = PhysicalNode(i)
        nodes[i] = node
        inst = TEInstance(spec, i)
        node.host_te(inst)
        for item in range(items_per_instance[i]):
            # Mirror the transport's delivery accounting: queued_items
            # is the logical depth the queue-depth policy sorts on.
            inst.inbox.append(("item", i, item))
            inst.queued_items += 1
        instances.append(inst)
    return instances, nodes


def drain_order(scheduler, instances, nodes, limit=100):
    """Selection order until the scheduler reports idle."""
    order = []
    for _ in range(limit):
        instance, throttled = scheduler.select(instances, nodes)
        if instance is None:
            if not throttled:
                return order
            continue
        instance.inbox.popleft()
        instance.queued_items -= 1
        order.append(instance.index)
    raise AssertionError("scheduler did not drain")


class TestRoundRobin:
    def test_rotates_across_loaded_instances(self):
        instances, nodes = make_instances(3, [2, 2, 2])
        order = drain_order(RoundRobinScheduler(), instances, nodes)
        assert order == [0, 1, 2, 0, 1, 2]

    def test_skips_empty_inboxes(self):
        instances, nodes = make_instances(3, [2, 0, 1])
        order = drain_order(RoundRobinScheduler(), instances, nodes)
        assert order == [0, 2, 0]

    def test_idle_returns_none(self):
        instances, nodes = make_instances(2, [0, 0])
        scheduler = RoundRobinScheduler()
        assert scheduler.select(instances, nodes) == (None, False)


class TestLongestQueue:
    def test_drains_deepest_inbox_first(self):
        instances, nodes = make_instances(3, [1, 4, 2])
        order = drain_order(LongestQueueScheduler(), instances, nodes)
        # Depths after each pick: (1,4,2) -> 1; (1,3,2) -> 1; (1,2,2)
        # tie breaks to 1; (1,1,2) -> 2; then all tied, key order.
        assert order == [1, 1, 1, 2, 0, 1, 2]

    def test_tie_breaks_on_instance_key(self):
        instances, nodes = make_instances(2, [3, 3])
        scheduler = LongestQueueScheduler()
        instance, throttled = scheduler.select(instances, nodes)
        assert (instance.index, throttled) == (0, False)

    def test_deterministic_across_runs(self):
        def once():
            instances, nodes = make_instances(4, [3, 5, 5, 1])
            return drain_order(LongestQueueScheduler(), instances, nodes)

        assert once() == once()


class TestStragglerCredit:
    def test_throttled_node_serves_at_its_speed(self):
        instances, nodes = make_instances(1, [2])
        nodes[0].speed = 0.5
        scheduler = RoundRobinScheduler()
        # First visit accrues 0.5 credit: a stall tick, nothing served.
        assert scheduler.select(instances, nodes) == (None, True)
        instance, throttled = scheduler.select(instances, nodes)
        assert instance is instances[0]
        assert not throttled

    def test_full_speed_node_not_charged(self):
        instances, nodes = make_instances(1, [1])
        scheduler = RoundRobinScheduler()
        instance, throttled = scheduler.select(instances, nodes)
        assert instance is instances[0]
        assert nodes[0].credit == 0.0

    def test_longest_queue_also_honours_credit(self):
        instances, nodes = make_instances(2, [5, 1])
        nodes[0].speed = 0.25  # the deep inbox sits on a straggler
        scheduler = LongestQueueScheduler()
        instance, throttled = scheduler.select(instances, nodes)
        # The straggler is held back; the shallow healthy instance runs.
        assert instance is instances[1]
        assert throttled


class TestResolution:
    def test_known_names_resolve(self):
        assert isinstance(resolve_scheduler("round_robin"),
                          RoundRobinScheduler)
        assert isinstance(resolve_scheduler("longest_queue"),
                          LongestQueueScheduler)

    def test_registry_names_match_classes(self):
        for name, cls in SCHEDULERS.items():
            assert cls.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(RuntimeExecutionError, match="unknown scheduler"):
            resolve_scheduler("fifo")

    def test_custom_policy_object_passthrough(self):
        policy = RoundRobinScheduler()
        assert resolve_scheduler(policy) is policy

    def test_non_scheduler_rejected(self):
        with pytest.raises(RuntimeExecutionError, match="select"):
            resolve_scheduler(42)


# ---------------------------------------------------------------------------
# Determinism against the seed engine
# ---------------------------------------------------------------------------


class SeedLoopScheduler:
    """The seed engine's step-loop selection, transcribed verbatim.

    Used as the reference policy: if :class:`RoundRobinScheduler`
    selects identically on a real workload, replay order is unchanged
    from the pre-refactor engine.
    """

    name = "seed_reference"

    def __init__(self):
        self._rotor = 0

    def select(self, instances, nodes):
        n = len(instances)
        throttled = False
        for offset in range(n):
            instance = instances[(self._rotor + offset) % n]
            if not instance.inbox:
                continue
            node = nodes[instance.node_id]
            if node.speed < 1.0:
                node.credit += max(node.speed, 0.0)
                if node.credit < 1.0:
                    throttled = True
                    continue
                node.credit -= 1.0
            self._rotor = (self._rotor + offset + 1) % n
            return instance, throttled
        return None, throttled


def traced_run(scheduler, straggle=False):
    """Run a fixed KV workload; return the processing trace + results.

    The trace is recorded at the *substrate* surface — the layer the
    engine actually drives — and the run asserts it executes on
    :class:`InProcessSubstrate`: the rotor-determinism reference is a
    property of that substrate (the seed loop, byte-for-byte), not of
    engine internals.
    """
    runtime = Runtime(
        build_kv_sdg(),
        RuntimeConfig(se_instances={"table": 3}, scheduler=scheduler),
    ).deploy()
    assert isinstance(runtime.substrate, InProcessSubstrate)
    trace = []
    original = runtime.substrate.process

    def record(instance, envelope):
        trace.append((instance.name, instance.index, envelope.ts))
        original(instance, envelope)

    runtime.substrate.process = record
    if straggle:
        slow = runtime.te_instances("serve")[1]
        runtime.nodes[slow.node_id].speed = 0.4
    for i in range(40):
        runtime.inject("serve", ("put", f"k{i}", i))
        runtime.inject("serve", ("get", f"k{i}", None))
    runtime.run_until_idle()
    return trace, runtime.results["serve"]


class TestSeedDeterminism:
    def test_round_robin_matches_seed_loop_order(self):
        seed_trace, seed_results = traced_run(SeedLoopScheduler())
        new_trace, new_results = traced_run(RoundRobinScheduler())
        assert new_trace == seed_trace
        assert new_results == seed_results

    def test_round_robin_matches_seed_loop_with_straggler(self):
        seed_trace, _ = traced_run(SeedLoopScheduler(), straggle=True)
        new_trace, _ = traced_run(RoundRobinScheduler(), straggle=True)
        assert new_trace == seed_trace

    def test_round_robin_replay_is_reproducible(self):
        first = traced_run(RoundRobinScheduler())
        second = traced_run(RoundRobinScheduler())
        assert first == second


class TestConfigKnob:
    def test_default_policy_is_round_robin(self):
        runtime = Runtime(build_kv_sdg()).deploy()
        assert isinstance(runtime.scheduler, RoundRobinScheduler)

    def test_longest_queue_selected_by_name(self):
        runtime = Runtime(
            build_kv_sdg(),
            RuntimeConfig(se_instances={"table": 2},
                          scheduler="longest_queue"),
        ).deploy()
        assert isinstance(runtime.scheduler, LongestQueueScheduler)
        for i in range(30):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        merged = {}
        for inst in runtime.se_instances("table"):
            merged.update(dict(inst.element.items()))
        assert merged == {i: i for i in range(30)}

    def test_unknown_policy_fails_at_deploy(self):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(scheduler="fastest_first"))
        with pytest.raises(RuntimeExecutionError, match="unknown scheduler"):
            runtime.deploy()

"""End-to-end tests for the durable epoch runner and its resume rungs."""

import os

import pytest

import repro.durability.runner as runner_mod
from repro.chaos import FaultPlan, KillNode, ScaleUp
from repro.durability import (
    BACKUPS_DIR,
    DurableRunner,
    RunSpec,
    SimulatedCrash,
    load_manifest,
)
from repro.errors import DurabilityError

SPEC = RunSpec(app="kvstore", seed=7, epochs=3, items_per_epoch=50)


def reference_hash(tmp_path, spec=SPEC, plan=None):
    """Final state hash of an uninterrupted run with the same inputs."""
    ref_dir = str(tmp_path / "ref")
    runner = DurableRunner.start(ref_dir, spec, plan=plan)
    runner.run()
    return runner.state_hash()


class TestEpochLoop:
    def test_each_epoch_is_fenced(self, tmp_path):
        run_dir = str(tmp_path / "run")
        runner = DurableRunner.start(run_dir, SPEC)
        for expected in (1, 2, 3):
            runner.run_epoch()
            on_disk = load_manifest(run_dir)
            assert on_disk.committed_epoch == expected
            record = on_disk.latest
            assert record.position == expected * SPEC.items_per_epoch
            assert record.checkpoints
            assert record.clean_topology
            # The fenced event offset matches the file on disk.
            events = os.path.join(run_dir, "events.jsonl")
            assert os.path.getsize(events) == record.events_offset

    def test_run_past_spec_refused(self, tmp_path):
        runner = DurableRunner.start(str(tmp_path / "run"), SPEC)
        runner.run()
        with pytest.raises(DurabilityError):
            runner.run_epoch()

    def test_start_refuses_existing_run(self, tmp_path):
        run_dir = str(tmp_path / "run")
        DurableRunner.start(run_dir, SPEC)
        with pytest.raises(DurabilityError):
            DurableRunner.start(run_dir, SPEC)

    def test_delta_chains_are_kept(self, tmp_path):
        spec = RunSpec(app="kvstore", seed=7, epochs=3,
                       items_per_epoch=50, full_every=0)
        run_dir = str(tmp_path / "run")
        runner = DurableRunner.start(run_dir, spec)
        runner.run()
        chains = [runner.store.chain(node)
                  for node in runner.manifest.latest.checkpoints]
        kinds = {c.kind for chain in chains for c in chain}
        assert kinds == {"full", "delta"}


class TestResume:
    def test_fast_resume_matches_uninterrupted(self, tmp_path):
        expected = reference_hash(tmp_path)
        run_dir = str(tmp_path / "run")
        runner = DurableRunner.start(run_dir, SPEC)
        runner.run_epoch()
        runner.run_epoch()
        del runner  # the process "dies" between epochs

        resumed = DurableRunner.resume(run_dir)
        assert resumed.resume_mode == "checkpoint"
        resumed.run()
        assert resumed.state_hash() == expected

    def test_crash_at_the_fence_loses_only_one_epoch(
            self, tmp_path, monkeypatch):
        expected = reference_hash(tmp_path)
        run_dir = str(tmp_path / "run")
        runner = DurableRunner.start(run_dir, SPEC)
        runner.run_epoch()
        boundary = runner.state_hash()

        def dying_fence(run_dir, manifest, crash_at=None):
            raise SimulatedCrash("power cut at the fence")

        monkeypatch.setattr(runner_mod, "write_manifest", dying_fence)
        with pytest.raises(SimulatedCrash):
            runner.run_epoch()  # epoch 2 checkpoints land, fence lost
        monkeypatch.undo()

        resumed = DurableRunner.resume(run_dir)
        assert resumed.manifest.committed_epoch == 1
        assert resumed.resume_mode == "checkpoint"
        assert resumed.state_hash() == boundary
        resumed.run()
        assert resumed.state_hash() == expected

    def test_double_crash_in_one_epoch(self, tmp_path):
        expected = reference_hash(tmp_path)
        run_dir = str(tmp_path / "run")
        runner = DurableRunner.start(run_dir, SPEC)
        runner.run_epoch()
        del runner
        # Crash again before the resumed incarnation commits anything:
        # the re-anchored checkpoints must keep the fast path alive.
        first = DurableRunner.resume(run_dir)
        assert first.resume_mode == "checkpoint"
        del first
        second = DurableRunner.resume(run_dir)
        assert second.resume_mode == "checkpoint"
        second.run()
        assert second.state_hash() == expected

    def test_lost_chunk_falls_back_to_replay(self, tmp_path):
        expected = reference_hash(tmp_path)
        run_dir = str(tmp_path / "run")
        runner = DurableRunner.start(run_dir, SPEC)
        runner.run_epoch()
        runner.run_epoch()
        del runner
        # Destroy one fenced chunk file; the fast rung must notice
        # (missing-chunk verification) and the replay rung take over.
        backups = os.path.join(run_dir, BACKUPS_DIR)
        victims = [os.path.join(root, name)
                   for root, _dirs, names in os.walk(backups)
                   for name in names if "chunk" in name]
        os.unlink(sorted(victims)[0])

        resumed = DurableRunner.resume(run_dir)
        assert resumed.resume_mode == "replay"
        resumed.run()
        assert resumed.state_hash() == expected

    def test_resume_before_first_commit_is_fresh(self, tmp_path):
        run_dir = str(tmp_path / "run")
        DurableRunner.start(run_dir, SPEC)
        resumed = DurableRunner.resume(run_dir)
        assert resumed.resume_mode == "fresh"
        resumed.run()
        assert resumed.state_hash() == reference_hash(tmp_path)

    def test_wordcount_round_trip(self, tmp_path):
        spec = RunSpec(app="wordcount", seed=5, epochs=3,
                       items_per_epoch=40)
        expected = reference_hash(tmp_path, spec=spec)
        run_dir = str(tmp_path / "run")
        runner = DurableRunner.start(run_dir, spec)
        runner.run_epoch()
        del runner
        resumed = DurableRunner.resume(run_dir)
        assert resumed.resume_mode == "checkpoint"
        resumed.run()
        assert resumed.state_hash() == expected


class TestChaosResume:
    def test_kills_resume_on_the_fast_path(self, tmp_path):
        plan = FaultPlan(
            faults=[KillNode(at_step=40, se="table", index=0),
                    KillNode(at_step=160, se="table", index=1)],
            seed=3)
        expected = reference_hash(tmp_path, plan=plan)
        run_dir = str(tmp_path / "run")
        runner = DurableRunner.start(run_dir, SPEC, plan=plan)
        runner.run_epoch()
        assert not runner.manifest.latest.pending_faults == []
        del runner
        resumed = DurableRunner.resume(run_dir)
        # Node kills keep the topology clean: recovery is one-to-one
        # and restores map by instance key, not node id.
        assert resumed.resume_mode == "checkpoint"
        resumed.run()
        assert resumed.state_hash() == expected

    def test_scale_up_forces_replay(self, tmp_path):
        plan = FaultPlan(faults=[ScaleUp(at_step=60, te="serve")],
                         seed=3)
        expected = reference_hash(tmp_path, plan=plan)
        run_dir = str(tmp_path / "run")
        runner = DurableRunner.start(run_dir, SPEC, plan=plan)
        runner.run_epoch()
        runner.run_epoch()
        assert not runner.manifest.latest.clean_topology
        del runner
        resumed = DurableRunner.resume(run_dir)
        assert resumed.resume_mode == "replay"
        resumed.run()
        assert resumed.state_hash() == expected


class TestProgramIdentity:
    def test_different_program_refused(self, tmp_path):
        run_dir = str(tmp_path / "run")
        runner = DurableRunner.start(run_dir, SPEC)
        runner.run_epoch()
        del runner
        manifest = load_manifest(run_dir)
        manifest.program["fingerprint"] += 1
        from repro.durability import write_manifest
        write_manifest(run_dir, manifest)
        with pytest.raises(DurabilityError):
            DurableRunner.resume(run_dir)

"""Recovery under compound failure scenarios."""

from repro.recovery import (
    BackupStore,
    CheckpointManager,
    DiskBackupStore,
    RecoveryManager,
)
from repro.runtime import Runtime, RuntimeConfig

from tests.helpers import build_cf_sdg, build_kv_sdg


def kv_cluster(n_partitions=3, store=None):
    runtime = Runtime(build_kv_sdg(),
                      RuntimeConfig(se_instances={"table": n_partitions}))
    runtime.deploy()
    store = store or BackupStore(m_targets=2)
    return (runtime, CheckpointManager(runtime, store),
            RecoveryManager(runtime, store))


def table_contents(runtime):
    merged = {}
    for inst in runtime.se_instances("table"):
        merged.update(dict(inst.element.items()))
    return merged


class TestSequentialFailures:
    def test_two_partitions_fail_one_after_another(self):
        runtime, ckpt, rec = kv_cluster(3)
        for i in range(90):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        ckpt.checkpoint_all()
        for i in range(90, 120):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()

        node0 = runtime.se_instance("table", 0).node_id
        runtime.fail_node(node0)
        rec.recover_node(node0)
        runtime.run_until_idle()

        node1 = runtime.se_instance("table", 1).node_id
        runtime.fail_node(node1)
        rec.recover_node(node1)
        runtime.run_until_idle()

        assert table_contents(runtime) == {i: i for i in range(120)}

    def test_simultaneous_failures(self):
        runtime, ckpt, rec = kv_cluster(3)
        for i in range(60):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        ckpt.checkpoint_all()
        node0 = runtime.se_instance("table", 0).node_id
        node1 = runtime.se_instance("table", 1).node_id
        runtime.fail_node(node0)
        runtime.fail_node(node1)
        rec.recover_node(node0)
        rec.recover_node(node1)
        runtime.run_until_idle()
        assert table_contents(runtime) == {i: i for i in range(60)}

    def test_repeated_failure_of_same_partition(self):
        runtime, ckpt, rec = kv_cluster(1)
        total = 0
        for round_number in range(3):
            for i in range(total, total + 25):
                runtime.inject("serve", ("put", i, i))
            total += 25
            runtime.run_until_idle()
            node = runtime.se_instance("table", 0).node_id
            ckpt.checkpoint(node)
            runtime.fail_node(node)
            rec.recover_node(node)
            runtime.run_until_idle()
        assert table_contents(runtime) == {i: i for i in range(total)}

    def test_failure_after_trimmed_buffers(self):
        """A checkpoint trims upstream buffers; recovery must then rely
        entirely on the checkpointed state."""
        runtime, ckpt, rec = kv_cluster(1)
        for i in range(50):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        node = runtime.se_instance("table", 0).node_id
        ckpt.checkpoint(node)
        buffered = sum(
            len(b) for b in runtime.input_buffers_snapshot().values()
        )
        assert buffered == 0  # everything trimmed
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        assert table_contents(runtime) == {i: i for i in range(50)}


class TestStatelessNodeFailure:
    def test_merge_node_failure_and_replay_from_stateful_upstream(self):
        runtime = Runtime(
            build_cf_sdg(),
            RuntimeConfig(se_instances={"userItem": 1, "coOcc": 2}),
        ).deploy()
        store = BackupStore()
        rec = RecoveryManager(runtime, store)
        for rating in [(0, 0, 5), (0, 1, 3), (1, 0, 4)]:
            runtime.inject("updateUserItem", rating)
        runtime.run_until_idle()
        runtime.inject("getUserVec", 0)
        runtime.run_until_idle()
        baseline = runtime.results["mergeRec"][0][1].to_list()

        merge_node = runtime.te_instances("mergeRec")[0].node_id
        runtime.fail_node(merge_node)
        # Queries issued while the merge node is down are buffered
        # upstream (responses pile into producer output buffers).
        runtime.inject("getUserVec", 0)
        runtime.run_until_idle()
        assert len(runtime.results["mergeRec"]) == 1  # nothing new
        rec.recover_node(merge_node)
        runtime.run_until_idle()
        results = runtime.results["mergeRec"]
        assert len(results) == 2
        assert results[1][1].to_list() == baseline


class TestDiskBackedRecovery:
    def test_end_to_end_via_disk_store(self, tmp_path):
        store = DiskBackupStore(str(tmp_path), m_targets=3)
        runtime, ckpt, rec = kv_cluster(2, store=store)
        for i in range(80):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        ckpt.checkpoint_all()
        # Force the restore path to go through the on-disk bytes.
        store.reload_from_disk()
        node = runtime.se_instance("table", 1).node_id
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        assert table_contents(runtime) == {i: i for i in range(80)}


class TestServiceContinuity:
    def test_surviving_partitions_serve_during_failure(self):
        runtime, ckpt, rec = kv_cluster(3)
        for i in range(30):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        dead = runtime.se_instance("table", 0).node_id
        runtime.fail_node(dead)
        # Reads for keys on surviving partitions still succeed.
        partitioner = runtime._partitioners["table"]
        answered_before = len(runtime.results["serve"])
        survivors = [i for i in range(30)
                     if partitioner.partition(i) != 0]
        for key in survivors:
            runtime.inject("serve", ("get", key, None))
        runtime.run_until_idle()
        answered = len(runtime.results["serve"]) - answered_before
        assert answered == len(survivors)

"""Heartbeat failure detection: dead, stalled and crashed nodes."""

import pytest

from repro.apps import KeyValueStore
from repro.errors import RuntimeExecutionError
from repro.runtime import FailureDetector


def put_te_of(app):
    return app.translation.entry_info("put").entry_te


class TestDeadDetection:
    def test_unannounced_kill_is_detected_by_heartbeat_timeout(self):
        """Nothing tells the detector which node died — it notices."""
        app = KeyValueStore.launch(table=2)
        detector = FailureDetector(
            app.runtime, heartbeat_timeout=30, check_every=5
        ).install()
        for i in range(40):
            app.put(i, i)
        app.run()
        assert detector.detected() == []

        victim = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(victim)
        # No detection until the heartbeat has been silent long enough.
        for i in range(200):
            app.put(i, i)
        app.run()

        dead = detector.detected("dead")
        assert [e.node_id for e in dead] == [victim]
        assert "no heartbeat" in dead[0].detail

    def test_each_failure_reported_exactly_once(self):
        app = KeyValueStore.launch(table=2)
        detector = FailureDetector(
            app.runtime, heartbeat_timeout=10, check_every=2
        ).install()
        victim = app.runtime.se_instance("table", 1).node_id
        app.runtime.fail_node(victim)
        for i in range(300):
            app.put(i, i)
        app.run()
        assert len(detector.detected("dead")) == 1

    def test_preexisting_failures_are_not_reported(self):
        """The detector supervises what happens on its watch only."""
        app = KeyValueStore.launch(table=2)
        victim = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(victim)
        detector = FailureDetector(
            app.runtime, heartbeat_timeout=10, check_every=2
        ).install()
        for i in range(200):
            app.put(i, i)
        app.run()
        assert detector.detected() == []

    def test_listener_invoked_on_detection(self):
        app = KeyValueStore.launch(table=2)
        detector = FailureDetector(
            app.runtime, heartbeat_timeout=10, check_every=2
        ).install()
        seen = []
        detector.subscribe(seen.append)
        victim = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(victim)
        for i in range(200):
            app.put(i, i)
        app.run()
        assert [e.node_id for e in seen] == [victim]


class TestStallDetection:
    def test_paused_node_with_queued_work_is_reported_stalled(self):
        app = KeyValueStore.launch(table=1)
        detector = FailureDetector(
            app.runtime, heartbeat_timeout=1_000, stall_timeout=50,
            check_every=5,
        ).install()
        for i in range(20):
            app.put(i, i)
        app.run()

        node = app.runtime.nodes[app.runtime.se_instance("table", 0).node_id]
        node.speed = 0.0  # paused, not dead: still heartbeating
        for i in range(10):
            app.put(i, i)
        # The engine emits stall ticks while all work sits on the
        # paused node, so logical time still passes for the detector.
        for _ in range(100):
            assert app.runtime.step()

        stalled = detector.detected("stalled")
        assert [e.node_id for e in stalled] == [node.node_id]
        assert detector.detected("dead") == []

    def test_idle_slow_node_is_not_stalled(self):
        """No queued work -> no stall verdict, however long it idles."""
        app = KeyValueStore.launch(table=2)
        detector = FailureDetector(
            app.runtime, stall_timeout=20, check_every=2
        ).install()
        idle = app.runtime.nodes[app.runtime.se_instance("table", 1).node_id]
        idle.speed = 0.0
        # Only feed keys owned by partition 0 so partition 1 stays empty.
        part = app.runtime._partitioners["table"]
        keys = [k for k in range(400) if part.partition(k) == 0]
        for k in keys:
            app.put(k, k)
        app.run()
        assert detector.detected() == []


class TestCrashDetection:
    def test_task_crash_reported_immediately(self):
        app = KeyValueStore.launch(table=2)
        detector = FailureDetector(app.runtime).install()
        instance = app.runtime.te_instances(put_te_of(app))[0]
        instance.crash_next = True
        victim = instance.node_id

        for i in range(20):
            app.put(i, i)
        app.run()

        crashed = detector.detected("crashed")
        assert [e.node_id for e in crashed] == [victim]
        assert "injected fault" in crashed[0].detail
        assert not app.runtime.nodes[victim].alive

    def test_crash_propagates_without_handlers(self):
        """No crash handler registered -> the engine stays loud."""
        app = KeyValueStore.launch(table=1)
        instance = app.runtime.te_instances(put_te_of(app))[0]
        instance.crash_next = True
        app.put(1, 1)
        with pytest.raises(RuntimeExecutionError, match="injected fault"):
            app.run()


class TestValidation:
    def test_rejects_non_positive_intervals(self):
        app = KeyValueStore.launch(table=1)
        with pytest.raises(RuntimeExecutionError):
            FailureDetector(app.runtime, heartbeat_timeout=0)
        with pytest.raises(RuntimeExecutionError):
            FailureDetector(app.runtime, stall_timeout=0)
        with pytest.raises(RuntimeExecutionError):
            FailureDetector(app.runtime, check_every=0)

    def test_install_is_idempotent_and_uninstall_detaches(self):
        app = KeyValueStore.launch(table=2)
        detector = FailureDetector(
            app.runtime, heartbeat_timeout=10, check_every=2
        ).install()
        assert detector.install() is detector
        detector.uninstall()
        victim = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(victim)
        for i in range(200):
            app.put(i, i)
        app.run()
        assert detector.detected() == []

"""Defining your own state element (§3.2).

The paper: "Developers can use predefined data structures for SEs
(e.g. Vector, HashMap, Matrix and DenseMatrix) or define their own by
implementing dynamic partitioning and dirty state support."

This example implements a Space-Saving heavy-hitters sketch as a custom
SE. By routing every mutation through the base-class ``_get``/``_set``/
``_delete`` helpers — which sit on the default
:class:`~repro.state.backend.DictBackend` — the sketch inherits the
whole machinery for free: the dirty-state overlay (so checkpoints never
block processing), chunked serialisation (so it can be backed up
m-to-n) *including incremental delta checkpoints* (the backend journals
every mutation), and partitioning support. A small annotated program
then tracks trending tags over replicated sketches.

Run with:

    python examples/custom_state_element.py
"""

from repro import Partial, SDGProgram, collection, entry, global_
from repro.recovery import BackupStore, CheckpointManager, RecoveryManager
from repro.state import StateElement


class HeavyHitters(StateElement):
    """Space-Saving top-k counter sketch as a custom SE.

    Keeps at most ``capacity`` counters; when a new key arrives at a
    full sketch, the minimum counter is evicted and the newcomer
    inherits its count + 1 (the classic Space-Saving overestimate).
    """

    BYTES_PER_ENTRY = 48

    def __init__(self, capacity: int = 8) -> None:
        super().__init__()  # default DictBackend stores the counters
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity

    # The only *required* override: how to make an empty twin.

    def spawn_empty(self) -> "HeavyHitters":
        return HeavyHitters(capacity=self.capacity)

    def chunk_meta(self):
        return {"capacity": self.capacity}

    def apply_chunk_meta(self, meta):
        self.capacity = meta.get("capacity", self.capacity)

    # -- domain API -----------------------------------------------------

    def hit(self, key) -> None:
        """Count one occurrence of ``key`` (evicting if necessary)."""
        current = self._get(key, None)
        if current is not None:
            self._set(key, current + 1)
            return
        entries = list(self._iter_items())
        if len(entries) < self.capacity:
            self._set(key, 1)
            return
        victim, floor = min(entries, key=lambda kv: kv[1])
        self._delete(victim)
        self._set(key, floor + 1)

    def top(self, n: int) -> list:
        """The ``n`` heaviest (key, count) pairs, heaviest first."""
        entries = sorted(self._iter_items(), key=lambda kv: -kv[1])
        return entries[:n]


class TrendingTags(SDGProgram):
    """Replicated heavy-hitter sketches with a merging global read."""

    sketches = Partial(lambda: HeavyHitters(capacity=8))

    @entry
    def observe(self, tag):
        self.sketches.hit(tag)

    @entry
    def trending(self, n):
        partial_top = global_(self.sketches).top(n)
        merged = self.merge_top(collection(partial_top), n)
        return merged

    def merge_top(self, all_tops, n):
        combined = {}
        for entries in all_tops:
            for key, count in entries:
                combined[key] = combined.get(key, 0) + count
        ranked = sorted(combined.items(), key=lambda kv: -kv[1])
        return ranked[:n]


def main():
    app = TrendingTags.launch(sketches=3)
    stream = (["#sdg"] * 40 + ["#dataflow"] * 25 + ["#state"] * 15
              + [f"#noise{i}" for i in range(30)])
    for tag in stream:
        app.observe(tag)
    app.run()
    app.trending(3)
    app.run()
    top3 = app.results("trending")[0]
    print("trending (merged across 3 replica sketches):")
    for tag, count in top3:
        print(f"  {tag}: ~{count}")
    assert top3[0][0] == "#sdg"

    # The custom SE inherits checkpoint/recovery support untouched.
    store = BackupStore(m_targets=2)
    manager = CheckpointManager(app.runtime, store)
    recovery = RecoveryManager(app.runtime, store)
    victim = app.runtime.se_instances("sketches")[0].node_id
    manager.checkpoint(victim)
    app.runtime.fail_node(victim)
    recovery.recover_node(victim)
    app.run()
    app.trending(3)
    app.run()
    assert app.results("trending")[-1][0][0] == "#sdg"
    print("\nsketch survived checkpoint + node failure + restore  [ok]")


if __name__ == "__main__":
    main()

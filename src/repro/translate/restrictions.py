"""Static enforcement of the paper's §4.1 program restrictions.

Beyond the structural rules (one SE per statement, merge-after-global),
translated programs must be:

* **deterministic** — replay-based recovery re-executes computation and
  downstream duplicate filtering assumes identical outputs, so programs
  "should not depend on system time or random input";
* **location independent** — TEs migrate between nodes, so programs
  "cannot make assumptions about the execution environment", e.g. local
  files, sockets or environment variables.

The checks are a conservative static scan over the method ASTs for
calls into the offending modules/builtins. Import aliases are resolved
first (``from time import time as now`` and ``import random as r`` do
not evade the scan), both for aliases introduced inside the scanned
method and for aliases passed in from the surrounding module/class
scope. The checks are heuristic (Python cannot be fully sandboxed
statically) but catch the realistic mistakes with actionable errors.

With a :class:`~repro.analysis.diagnostics.DiagnosticSink` the scan
reports **every** violation as a structured diagnostic; without one it
raises :class:`~repro.errors.TranslationError` on the first, which is
the historical ``translate()`` behaviour.
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import DiagnosticSink
from repro.errors import TranslationError

#: Module roots whose use breaks determinism (§4.1).
_NONDETERMINISTIC_MODULES = frozenset({
    "random", "secrets", "uuid", "time", "datetime",
})

#: Module roots whose use breaks location independence (§4.1).
_ENVIRONMENT_MODULES = frozenset({
    "os", "socket", "subprocess", "pathlib", "tempfile", "shutil",
})

#: Builtins that read the execution environment.
_FORBIDDEN_BUILTINS = frozenset({"input", "open"})


def _call_root(node: ast.Call) -> str | None:
    """The leftmost name of a call target (``random.random`` → ``random``)."""
    target = node.func
    while isinstance(target, ast.Attribute):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id
    return None


def collect_import_aliases(nodes: list[ast.stmt]) -> dict[str, str]:
    """Map every name an import binds to the *root* module it came from.

    ``import random as r`` → ``{"r": "random"}``; ``from time import
    time as now`` → ``{"now": "time"}``; ``from os.path import join``
    → ``{"join": "os"}``. Plain ``import random`` maps the root to
    itself, so resolution is a no-op for the unaliased case.
    """
    aliases: dict[str, str] = {}
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    bound = alias.asname or root
                    aliases[bound] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports cannot name stdlib roots
                root = node.module.split(".")[0]
                for alias in node.names:
                    bound = alias.asname or alias.name
                    aliases[bound] = root
    return aliases


def check_restrictions(
    fn: ast.FunctionDef,
    method: str,
    module_aliases: dict[str, str] | None = None,
    sink: DiagnosticSink | None = None,
) -> None:
    """Scan one method for §4.1 violations.

    Raises on the first violation, or — when ``sink`` is given —
    records every violation as a diagnostic and returns.
    """
    aliases = dict(module_aliases or {})
    aliases.update(collect_import_aliases(fn.body))
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        root = _call_root(node)
        if root is None:
            continue
        resolved = aliases.get(root, root)
        alias_note = (f" (via the import alias {root!r})"
                      if resolved != root else "")
        if resolved in _NONDETERMINISTIC_MODULES:
            message = (
                f"method {method!r} calls into {resolved!r}{alias_note}: "
                f"translated programs must be deterministic — recovery "
                f"re-executes computation and filters duplicates by "
                f"identity (§4.1); pass randomness/timestamps in as "
                f"entry arguments instead"
            )
            if sink is None:
                raise TranslationError(message, lineno=node.lineno)
            sink.emit(
                "SDG101", message, lineno=node.lineno,
                col=node.col_offset, origin=method,
                hint="pass the nondeterministic value in as an entry "
                     "argument computed by the caller",
            )
        elif resolved in _ENVIRONMENT_MODULES or (
            resolved in _FORBIDDEN_BUILTINS and root == resolved
        ):
            message = (
                f"method {method!r} calls into {resolved!r}{alias_note}: "
                f"translated programs must be location independent — TEs "
                f"run on (and migrate between) arbitrary nodes and cannot "
                f"rely on local files, sockets or the OS environment "
                f"(§4.1)"
            )
            if sink is None:
                raise TranslationError(message, lineno=node.lineno)
            sink.emit(
                "SDG102", message, lineno=node.lineno,
                col=node.col_offset, origin=method,
                hint="move environment interaction outside the program; "
                     "feed external data in through entry methods",
            )

"""End-to-end tests of the sdglint passes over the fixture corpus.

Positive case: every intentionally-broken fixture reports its code with
a span pointing into the fixture file. Negative case: the clean fixture
and every bundled application lint clean, and running the analyzer does
not perturb what ``translate()`` produces.
"""

import inspect

import pytest

from repro import analysis
from repro.analysis.engine import bundled_targets
from repro.core.dispatch import Dispatch
from repro.translate import translate

from tests.analysis.fixtures import (
    aliased_imports,
    backend_bypass,
    clean,
    dead_payload,
    env_access,
    free_function_nondet,
    graphs,
    helper_nondet,
    helper_race,
    key_mismatch,
    laundered_bypass,
    laundered_index_merge,
    operand_swap_merge,
    order_sensitive_merge,
    partial_race,
    process_identity,
    shadowed_builtin,
)


def line_of(module, needle: str) -> int:
    """1-based line number of the first source line containing needle."""
    for index, line in enumerate(inspect.getsource(module).splitlines(), 1):
        if needle in line:
            return index
    raise AssertionError(f"{needle!r} not found in {module.__name__}")


PROGRAM_CASES = [
    (aliased_imports, aliased_imports.AliasedClock, "SDG101", "now()"),
    (env_access, env_access.HostnameTagger, "SDG102", "sck.gethostname"),
    (partial_race, partial_race.PartialRace, "SDG301",
     "self.counters.increment"),
    (order_sensitive_merge, order_sensitive_merge.OrderSensitiveMerge,
     "SDG302", "all_scores[0]"),
    (operand_swap_merge, operand_swap_merge.OperandSwapMerge,
     "SDG302", "acc = cur - acc"),
    (laundered_index_merge, laundered_index_merge.LaunderedIndexMerge,
     "SDG302", "sorted(all_scores"),
    (backend_bypass, backend_bypass.BackendBypass, "SDG303",
     "self.table._backend"),
    (key_mismatch, key_mismatch.KeyDrift, "SDG304", "self.table.delete"),
    (dead_payload, dead_payload.DeadPayload, "SDG305", "def store"),
    # Interprocedural: violations laundered through calls. The first
    # diagnostic is the direct site (helper body) when one exists, or
    # the chained entry-side report for free functions the per-method
    # scans never see.
    (helper_nondet, helper_nondet.JitteredStore, "SDG101",
     "random.random()"),
    (free_function_nondet, free_function_nondet.FreeFunctionNoise,
     "SDG101", "self.table.put(key, noise())"),
    (helper_race, helper_race.HelperRace, "SDG301", "self._stash"),
    (laundered_bypass, laundered_bypass.LaunderedBypass, "SDG303",
     "self._launder(self.table"),
    (process_identity, process_identity.ProcessIdentity, "SDG101",
     "hash(value)"),
]


class TestFixtureCorpus:
    @pytest.mark.parametrize(
        "module, program, code, needle",
        PROGRAM_CASES,
        ids=[case[2] for case in PROGRAM_CASES],
    )
    def test_fixture_reports_its_code_at_the_right_span(
        self, module, program, code, needle
    ):
        report = analysis.run(program)
        assert report.codes() == {code}
        diagnostic = report.by_code(code)[0]
        assert diagnostic.span.file == module.__file__
        assert diagnostic.span.line == line_of(module, needle)

    def test_alias_note_names_the_alias(self):
        report = analysis.run(aliased_imports.AliasedClock)
        message = report.by_code("SDG101")[0].message
        assert "'now'" in message and "'time'" in message

    def test_clean_fixture_is_clean(self):
        report = analysis.run(clean.CleanCounters)
        assert report.clean, report.render_text()

    def test_local_shadow_of_forbidden_builtin_is_clean(self):
        # Regression: a parameter *named* ``open`` is a local value,
        # not the file-opening builtin the §4.1 scan forbids.
        report = analysis.run(shadowed_builtin.ShadowedOpen)
        assert report.clean, report.render_text()

    def test_transitive_reach_is_reported_against_the_entry(self):
        report = analysis.run(helper_nondet.JitteredStore)
        origins = {d.origin for d in report.by_code("SDG101")}
        assert origins == {"_jitter", "put_jittered"}

    @pytest.mark.parametrize("code", sorted(graphs.BROKEN_BUILDERS))
    def test_broken_graph_reports_its_code(self, code):
        report = analysis.run(graphs.BROKEN_BUILDERS[code])
        assert code in report.codes(), report.render_text()

    def test_error_severity_split(self):
        assert not analysis.run(partial_race.PartialRace).ok
        assert not analysis.run(backend_bypass.BackendBypass).ok
        # Warnings alone leave the report ok (exit 0 in the CLI).
        dead = analysis.run(dead_payload.DeadPayload)
        assert dead.ok and not dead.clean


class TestBundledApps:
    @pytest.mark.parametrize("name", sorted(bundled_targets()))
    def test_every_bundled_app_lints_clean(self, name):
        report = bundled_targets()[name]()
        assert report.clean, report.render_text()


class TestAnalyzerDoesNotPerturbTranslation:
    """The lint front-end must leave ``translate()`` byte-identical."""

    def _shape(self, result):
        sdg = result.sdg
        return {
            "tasks": {
                (te.name, te.state, te.access, te.is_entry, te.is_merge)
                for te in sdg.tasks.values()
            },
            "states": {
                (se.name, se.kind, se.partition_by)
                for se in sdg.states.values()
            },
            "dataflows": {
                (e.src, e.dst, e.dispatch, e.key_name)
                for e in sdg.dataflows
            },
            "entries": {
                name: (info.params, info.te_names)
                for name, info in result.entries.items()
            },
        }

    @pytest.mark.parametrize("program", [
        clean.CleanCounters, partial_race.PartialRace,
        key_mismatch.KeyDrift, dead_payload.DeadPayload,
    ])
    def test_same_sdg_with_and_without_sink(self, program):
        strict = translate(program)
        sink = analysis.DiagnosticSink()
        linted = translate(program, sink=sink)
        assert self._shape(strict) == self._shape(linted)

    def test_translated_clean_program_still_runs(self):
        result = translate(clean.CleanCounters)
        fn = result.sdg.task(result.entries["store"].entry_te).fn
        assert callable(fn)
        assert result.entries["store"].params == ["key", "value"]

    def test_keyed_edges_survive_lint_mode(self):
        sink = analysis.DiagnosticSink()
        result = translate(partial_race.PartialRace, sink=sink)
        keyed = [e for e in result.sdg.dataflows
                 if e.dispatch is Dispatch.KEY_PARTITIONED]
        assert keyed and keyed[0].key_name == "key"

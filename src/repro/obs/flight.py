"""The flight recorder: a bounded ring of recent per-process activity.

Post-mortem debugging of a crashed worker (or a SIGKILLed durable run)
needs the *last few things the process did*, not the full history. The
:class:`FlightRecorder` keeps a ``deque(maxlen=capacity)`` of compact
event records — one per envelope served, plus structural notes (node
failures, restarts) — so memory stays O(capacity) no matter how long
the run.

Where the dump surfaces:

* a multiprocess worker that dies ships ``flight.dump()`` inside its
  ``MSG_CRASH`` frame, and the coordinator appends the rendered tail
  to the raised error;
* a durable run (:mod:`repro.durability.runner`) writes the dump to
  ``<run_dir>/flight.json`` at every epoch fence and periodically
  between fences, so a SIGKILL post-mortem shows the run's last steps;
* ``repro top`` renders the tail live.

Dump schema — a JSON-ready list of dicts, oldest first. Every record
has ``step`` (logical step when recorded) and ``kind``; envelope
records (``kind="serve"``) add ``te``, ``instance``, ``edge`` (the
dataflow edge index, ``-1`` for external input), ``src``
(``"te/instance"`` of the producer), ``ts`` (per-stream sequence
number), ``request_id`` and a truncated ``payload`` repr. The
recording process's worker id (``None`` for the coordinator /
in-process runtime) is stamped on the recorder, not per record.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.envelope import Envelope
    from repro.runtime.instances import TEInstance

__all__ = ["DEFAULT_CAPACITY", "FlightRecorder", "render_dump"]

#: Default ring capacity when a caller enables recording without
#: choosing one (e.g. the durable runner).
DEFAULT_CAPACITY = 256

#: Truncation bound for payload reprs — crash payloads can be huge.
_PAYLOAD_REPR_LIMIT = 120


def _payload_digest(payload: Any) -> str:
    try:
        text = repr(payload)
    except Exception:  # pragma: no cover - hostile __repr__
        text = f"<unreprable {type(payload).__name__}>"
    if len(text) > _PAYLOAD_REPR_LIMIT:
        text = text[:_PAYLOAD_REPR_LIMIT - 3] + "..."
    return text


class FlightRecorder:
    """Bounded ring buffer of recent envelope digests and notes."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        #: Worker id of the recording process (None = coordinator).
        self.worker: int | None = None
        self._ring: deque[dict] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._ring)

    # -- write side ----------------------------------------------------

    def record(self, step: int, kind: str, **detail: Any) -> None:
        """Append one structural note (node failure, restart, ...)."""
        entry = {"step": step, "kind": kind}
        entry.update(detail)
        self._ring.append(entry)

    def record_envelope(self, step: int, instance: "TEInstance",
                        envelope: "Envelope") -> None:
        """Append the digest of one envelope about to be served."""
        channel = envelope.channel
        self._ring.append({
            "step": step,
            "kind": "serve",
            "te": instance.name,
            "instance": instance.index,
            "edge": channel.edge_index,
            "src": f"{channel.src_te}/{channel.src_instance}",
            "ts": envelope.ts,
            "request_id": envelope.request_id,
            "payload": _payload_digest(envelope.payload),
        })

    def reset(self) -> None:
        """Empty the ring (worker startup after a fork)."""
        self._ring.clear()

    # -- read side -----------------------------------------------------

    def dump(self) -> list[dict]:
        """The ring as JSON-ready dicts, oldest first."""
        return [dict(entry) for entry in self._ring]

    def tail(self, n: int) -> list[dict]:
        return [dict(entry) for entry in
                list(self._ring)[-n:]] if n > 0 else []

    def render(self, limit: int | None = None) -> str:
        """Human-readable tail, one line per record."""
        entries = self.dump()
        if limit is not None:
            entries = entries[-limit:]
        if not entries:
            return "(flight recorder empty)"
        lines = []
        for entry in entries:
            if entry["kind"] == "serve":
                req = (f" req={entry['request_id']}"
                       if entry.get("request_id") is not None else "")
                lines.append(
                    f"step {entry['step']:>6}  serve "
                    f"{entry['te']}[{entry['instance']}] "
                    f"<- {entry['src']} ts={entry['ts']}{req} "
                    f"{entry['payload']}"
                )
            else:
                extra = " ".join(
                    f"{k}={v}" for k, v in entry.items()
                    if k not in ("step", "kind")
                )
                lines.append(
                    f"step {entry['step']:>6}  {entry['kind']}"
                    f"{'  ' + extra if extra else ''}"
                )
        return "\n".join(lines)


def render_dump(entries: list[dict], limit: int | None = None) -> str:
    """Render a shipped :meth:`FlightRecorder.dump` (e.g. from a
    ``MSG_CRASH`` payload) without reconstructing a recorder."""
    recorder = FlightRecorder(capacity=max(1, len(entries) or 1))
    recorder._ring.extend(entries)
    return recorder.render(limit)

"""The pipelined SDG execution engine (§3.3).

The engine materialises a validated SDG and processes data items
cooperatively (single-threaded, deterministic): ``inject`` feeds
external input to entry TEs and ``run_until_idle`` drains the
pipeline. Since the layered refactor, :class:`Runtime` is a *facade*
over four subsystems, each a seam where a future policy or backend can
plug in:

* :mod:`repro.runtime.deployment` — the :class:`~repro.runtime
  .deployment.Topology` owns instances, nodes, partitioners, epochs;
* :mod:`repro.runtime.scheduler` — pluggable instance-selection
  policies plus the straggler-credit accounting;
* :mod:`repro.runtime.transport` — channels, inbox delivery, payload
  isolation, and backpressure reporting;
* :mod:`repro.runtime.dispatcher` — the four dispatch semantics over a
  deploy-time successor index.

The facade keeps the public API of the original monolithic engine:
``repro.recovery`` and ``repro.chaos`` drive it unchanged.

Determinism note: the paper requires translated programs to be
deterministic so that recovery can re-execute computation (§4.1); the
default :class:`~repro.runtime.scheduler.RoundRobinScheduler` honours
the same contract by processing instances in a fixed rotor order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.elements import AccessMode, StateKind, TaskContext
from repro.core.graph import SDG
from repro.errors import RuntimeExecutionError
from repro.obs.events import KIND, EventBus
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ProfileRegistry
from repro.obs.trace import Tracer
from repro.runtime.deployment import Topology
from repro.runtime.dispatcher import Dispatcher
from repro.runtime.envelope import (
    INPUT_EDGE,
    NO_RESPONSE,
    Batch,
    ChannelId,
    Envelope,
    envelope_weight,
)
from repro.runtime.instances import (
    GatherState,
    SEInstance,
    StreamKey,
    TEInstance,
    stream_key,
)
from repro.runtime.node import PhysicalNode
from repro.runtime.scaling import BottleneckDetector
from repro.runtime.scheduler import Scheduler, resolve_scheduler
from repro.runtime.substrate import (
    ExecutionSubstrate,
    resolve_substrate,
)
from repro.runtime.transport import Transport
from repro.state import HashPartitioner


@dataclass
class RuntimeConfig:
    """Deployment-time knobs of the runtime."""

    #: Initial instance count per SE (partition or replica count).
    se_instances: dict[str, int] = field(default_factory=dict)
    #: Custom routing partitioner per partitioned SE (e.g. a
    #: RangePartitioner); defaults to hash partitioning. The
    #: partitioner's fan-out fixes the SE's instance count.
    partitioners: dict[str, Any] = field(default_factory=dict)
    #: Initial instance count per *stateless* TE.
    te_instances: dict[str, int] = field(default_factory=dict)
    #: Enable the reactive bottleneck detector (§3.3).
    auto_scale: bool = False
    #: Inbox backlog per instance that flags a TE as a bottleneck.
    scale_threshold: int = 64
    #: Upper bound on instances created by auto-scaling.
    max_instances: int = 8
    #: Steps between bottleneck checks when auto-scaling.
    scale_check_every: int = 256
    #: Deep-copy payloads at send time. On a real cluster every hop
    #: serialises (§4.1 location independence), so a producer can never
    #: observe a consumer's mutations; in-process, shared references
    #: could. Enable to get wire-faithful isolation at a CPU cost.
    copy_payloads: bool = False
    #: Instance-selection policy: a name from
    #: :data:`repro.runtime.scheduler.SCHEDULERS` (``"round_robin"``,
    #: ``"longest_queue"``) or a custom
    #: :class:`~repro.runtime.scheduler.Scheduler` object. The default
    #: preserves the seed engine's deterministic replay order.
    scheduler: str | Scheduler = "round_robin"
    #: Per-channel inbox bound for backpressure *reporting* (None =
    #: unbounded). Delivery never blocks or drops — recovery relies on
    #: reliable channels — but channels over this depth show up in
    #: :meth:`Runtime.blocked_channels` and feed the bottleneck
    #: detector as a second scaling signal.
    channel_capacity: int | None = None
    #: Full/delta checkpoint cadence: a
    #: :class:`repro.recovery.policy.CheckpointPolicy` (or anything
    #: with an int ``full_every >= 0``) picked up by every
    #: CheckpointManager built against this runtime. ``None`` keeps the
    #: default (a full checkpoint every cycle). Typed loosely because
    #: ``repro.recovery`` imports runtime modules, not the reverse.
    checkpoint_policy: Any = None
    #: Metrics sink: anything registry-shaped (``counter``/``gauge``/
    #: ``histogram`` factories — see :mod:`repro.obs.metrics`). ``None``
    #: gives each runtime a fresh private
    #: :class:`~repro.obs.metrics.MetricsRegistry`; pass
    #: :data:`~repro.obs.metrics.NULL_REGISTRY` to disable collection
    #: entirely, or ``repro.obs.metrics.default_registry()`` to share
    #: one process-wide sink.
    metrics: Any = None
    #: Enable per-envelope causal tracing (:mod:`repro.obs.trace`).
    #: Every injected item gets a trace id that survives dispatch
    #: fan-out, repartition and replay; hop/queue-wait spans are
    #: recorded on ``runtime.tracer``. Off by default — the disabled
    #: hot path is a single ``is None`` check. Works on every
    #: substrate: multiprocess workers record hops locally and the
    #: coordinator merges their shards into one causal view.
    trace: bool = False
    #: Enable wall-clock phase profiling (:mod:`repro.obs.profile`):
    #: process/dispatch/serialize/wire-wait/checkpoint/recovery timers
    #: on ``runtime.profiler``, merged across workers via
    #: :meth:`Runtime.merged_profile`. Off by default — the disabled
    #: hot path is a single ``is None`` check (the same bar as
    #: tracing; see ``benchmarks/test_obs_profile.py``).
    profile: bool = False
    #: Flight-recorder ring capacity (:mod:`repro.obs.flight`): keep
    #: the digests of the last N served envelopes per process for
    #: post-mortems (crash frames, durable-run dumps, ``repro top``).
    #: ``0`` (the default) disables recording entirely.
    flight_recorder: int = 0
    #: Fleet-restart budget for the multiprocess substrate: how many
    #: worker crashes are absorbed by re-forking the fleet from the
    #: last barrier (replaying the inputs delivered since) before one
    #: propagates as an error. ``0`` (the default) propagates the
    #: first crash. Requires ``substrate="multiprocess"``.
    worker_restarts: int = 0
    #: Execution substrate: ``"inprocess"`` (the deterministic
    #: single-threaded logical-time loop — the default and the
    #: testing/repro baseline), ``"multiprocess"`` (shared-nothing
    #: worker processes connected by OS pipes), or a custom
    #: :class:`~repro.runtime.substrate.ExecutionSubstrate` object.
    substrate: str | ExecutionSubstrate = "inprocess"
    #: Worker process count for the multiprocess substrate (``None``
    #: defaults to 2). Only meaningful with
    #: ``substrate="multiprocess"``; setting it for the in-process
    #: substrate is a deploy-time error.
    workers: int | None = None
    #: Deploy-time substrate-safety gate for payload-isolating
    #: substrates (multiprocess): run the SDG4xx static passes and
    #: ``"warn"`` about findings, ``"enforce"`` (refuse to deploy on
    #: any error-severity finding, with the offending call chain in
    #: the error), or ``"off"``. Ignored on the in-process substrate.
    substrate_check: str = "warn"
    #: Capability-driven optimization (the sdglint-as-optimizer seam).
    #: When on, the runtime consults a
    #: :class:`~repro.analysis.capabilities.ProgramCapabilities`
    #: certificate and arms three relaxed paths *only* where the
    #: analyzer produced a positive proof: transport-level envelope
    #: coalescing on ``COALESCIBLE_DISPATCH`` channels, eager gather
    #: folds for ``COMMUTATIVE_MERGE`` TEs, and journal-batched RMWs
    #: on ``BATCHABLE_RMW`` state. Uncertified programs take the exact
    #: baseline path even with this flag set.
    optimize: bool = False
    #: Pre-certified capabilities to deploy with (e.g. attached by
    #: ``SDGProgram.launch``). ``None`` with ``optimize=True`` makes
    #: the runtime certify its SDG itself at deploy time.
    capabilities: Any = None
    #: Upper bound on payloads coalesced into one batched delivery.
    optimize_batch_max: int = 64

    def validate(self, sdg: "SDG") -> None:
        """Reject malformed deployment knobs before they misbehave.

        Called by :meth:`Runtime.deploy`; raising here turns a typo'd SE
        name or a zero scaling interval into a clear deploy-time error
        instead of a silently ignored setting.
        """
        for knob in ("scale_threshold", "max_instances",
                     "scale_check_every"):
            value = getattr(self, knob)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise RuntimeExecutionError(
                    f"RuntimeConfig.{knob} must be an integer >= 1, "
                    f"got {value!r}"
                )
        capacity = self.channel_capacity
        if capacity is not None:
            if not isinstance(capacity, int) or isinstance(capacity, bool) \
                    or capacity < 1:
                raise RuntimeExecutionError(
                    f"RuntimeConfig.channel_capacity must be None or an "
                    f"integer >= 1, got {capacity!r}"
                )
        # Raises on unknown policy names / non-scheduler objects.
        resolve_scheduler(self.scheduler)
        if not isinstance(self.trace, bool):
            raise RuntimeExecutionError(
                f"RuntimeConfig.trace must be a bool, got {self.trace!r}"
            )
        if not isinstance(self.profile, bool):
            raise RuntimeExecutionError(
                f"RuntimeConfig.profile must be a bool, "
                f"got {self.profile!r}"
            )
        capacity_knob = self.flight_recorder
        if not isinstance(capacity_knob, int) \
                or isinstance(capacity_knob, bool) or capacity_knob < 0:
            raise RuntimeExecutionError(
                f"RuntimeConfig.flight_recorder must be an integer >= 0 "
                f"(ring capacity, 0 = off), got {capacity_knob!r}"
            )
        restarts = self.worker_restarts
        if not isinstance(restarts, int) or isinstance(restarts, bool) \
                or restarts < 0:
            raise RuntimeExecutionError(
                f"RuntimeConfig.worker_restarts must be an integer >= 0, "
                f"got {restarts!r}"
            )
        if restarts and self.substrate != "multiprocess":
            raise RuntimeExecutionError(
                "RuntimeConfig.worker_restarts requires "
                "substrate='multiprocess'; the in-process substrate has "
                "no worker fleet to restart"
            )
        workers = self.workers
        if workers is not None:
            if not isinstance(workers, int) or isinstance(workers, bool) \
                    or workers < 1:
                raise RuntimeExecutionError(
                    f"RuntimeConfig.workers must be None or an integer "
                    f">= 1, got {workers!r}"
                )
            if self.substrate == "inprocess":
                raise RuntimeExecutionError(
                    "RuntimeConfig.workers requires "
                    "substrate='multiprocess'; the in-process substrate "
                    "is single-process by definition"
                )
        if self.substrate == "multiprocess":
            # Structural mutations (scale-out, repartition) are not yet
            # wired through the control plane; fail at deploy instead
            # of mid-run. (Tracing, metrics, profiling and the flight
            # recorder all work cross-process — workers ship shards the
            # coordinator merges.)
            if self.auto_scale:
                raise RuntimeExecutionError(
                    "auto_scale requires the in-process substrate: "
                    "reactive scale-out is not yet a multiprocess "
                    "control-plane action"
                )
        if not isinstance(self.optimize, bool):
            raise RuntimeExecutionError(
                f"RuntimeConfig.optimize must be a bool, "
                f"got {self.optimize!r}"
            )
        if self.optimize:
            if self.auto_scale:
                # Repartitioning re-keys queued payloads one by one;
                # reactive scale-out racing the coalescer is not a
                # combination worth the complexity — refuse it.
                raise RuntimeExecutionError(
                    "optimize=True is incompatible with auto_scale: "
                    "disable one of the two"
                )
            batch_max = self.optimize_batch_max
            if not isinstance(batch_max, int) or isinstance(batch_max, bool) \
                    or batch_max < 2:
                raise RuntimeExecutionError(
                    f"RuntimeConfig.optimize_batch_max must be an integer "
                    f">= 2, got {batch_max!r}"
                )
        if self.substrate_check not in ("warn", "enforce", "off"):
            raise RuntimeExecutionError(
                f"RuntimeConfig.substrate_check must be 'warn', "
                f"'enforce' or 'off', got {self.substrate_check!r}"
            )
        # Raises on unknown substrate names / non-substrate objects.
        resolve_substrate(self.substrate, self)
        if self.metrics is not None:
            for factory in ("counter", "gauge", "histogram"):
                if not callable(getattr(self.metrics, factory, None)):
                    raise RuntimeExecutionError(
                        f"RuntimeConfig.metrics must be registry-shaped "
                        f"(callable counter/gauge/histogram), got "
                        f"{self.metrics!r}"
                    )
        policy = self.checkpoint_policy
        if policy is not None:
            cadence = getattr(policy, "full_every", None)
            if not isinstance(cadence, int) or isinstance(cadence, bool) \
                    or cadence < 0:
                raise RuntimeExecutionError(
                    f"RuntimeConfig.checkpoint_policy must expose an "
                    f"integer full_every >= 0 (e.g. a CheckpointPolicy), "
                    f"got {policy!r}"
                )
        known_ses = set(sdg.states)
        unknown_ses = sorted(set(self.se_instances) - known_ses)
        if unknown_ses:
            raise RuntimeExecutionError(
                f"se_instances names unknown SEs {unknown_ses}; this "
                f"SDG declares {sorted(known_ses)}"
            )
        unknown_parts = sorted(set(self.partitioners) - known_ses)
        if unknown_parts:
            raise RuntimeExecutionError(
                f"partitioners names unknown SEs {unknown_parts}; this "
                f"SDG declares {sorted(known_ses)}"
            )
        known_tes = set(sdg.tasks)
        unknown_tes = sorted(set(self.te_instances) - known_tes)
        if unknown_tes:
            raise RuntimeExecutionError(
                f"te_instances names unknown TEs {unknown_tes}; this "
                f"SDG declares {sorted(known_tes)}"
            )
        for mapping, what in ((self.se_instances, "se_instances"),
                              (self.te_instances, "te_instances")):
            for name, count in mapping.items():
                if not isinstance(count, int) or isinstance(count, bool) \
                        or count < 1:
                    raise RuntimeExecutionError(
                        f"{what}[{name!r}] must be an integer >= 1, "
                        f"got {count!r}"
                    )


class Runtime:
    """Deploys and executes one SDG in-process (the layer facade)."""

    def __init__(self, sdg: SDG, config: RuntimeConfig | None = None) -> None:
        self.sdg = sdg
        self.config = config or RuntimeConfig()
        #: The deployment layer: instances, nodes, partitioners, epochs.
        self.topology = Topology(sdg, self.config)
        #: The transport layer; built at deploy.
        self.transport: Transport | None = None
        #: The dispatch layer; built at deploy.
        self.dispatcher: Dispatcher | None = None
        #: The scheduling policy; resolved from the config at deploy.
        self.scheduler: Scheduler | None = None
        #: The execution substrate; resolved from the config at deploy.
        self.substrate: ExecutionSubstrate | None = None
        #: Metrics registry: fresh per runtime unless injected via the
        #: config, so tests never see each other's counts.
        self.metrics = (
            self.config.metrics if self.config.metrics is not None
            else MetricsRegistry()
        )
        #: Structured event bus all layers publish to (always on; an
        #: event is only created when something structural happens).
        self.events = EventBus()
        #: Causal tracer, or None when ``config.trace`` is off.
        self.tracer: Tracer | None = Tracer() if self.config.trace else None
        #: Wall-clock phase profiler, or None when ``config.profile``
        #: is off (:meth:`merged_profile` folds worker shards in).
        self.profiler: ProfileRegistry | None = (
            ProfileRegistry() if self.config.profile else None
        )
        #: Flight recorder, or None when ``config.flight_recorder`` is
        #: 0. Not pre-bound on the hot path (checked directly) so the
        #: durable runner can attach one to an already-built runtime.
        self.flight: FlightRecorder | None = (
            FlightRecorder(self.config.flight_recorder)
            if self.config.flight_recorder else None
        )
        #: Pre-bound phase timers (None when profiling is off): the
        #: per-item cost of disabled profiling is these `is None`
        #: checks, nothing more.
        self._p_process = (self.profiler.phase("process")
                           if self.profiler is not None else None)
        self._p_dispatch = (self.profiler.phase("dispatch")
                            if self.profiler is not None else None)
        #: Collected payloads of TEs without outgoing dataflows.
        self.results: dict[str, list[Any]] = {}
        self.total_steps = 0
        self._rr: dict[Any, int] = {}
        #: Per-entry global injection counter (see TEInstance.out_seq for
        #: why timestamps are per-stream, not per-channel).
        self._input_seq: dict[str, int] = {}
        self._input_buffers: dict[ChannelId, list[Envelope]] = {}
        self._terminal_seen: set = set()
        self._step_hooks: list = []
        self._crash_handlers: list = []
        self._deployed = False
        self._scale_events: list[tuple[int, str, int]] = []
        self._detector: BottleneckDetector | None = None
        #: Resolved ProgramCapabilities when ``config.optimize`` is on
        #: (``None`` otherwise — and every relaxed path stays off).
        self.capabilities: Any = None
        #: Merge TE name -> MergeFold for certified-foldable merges.
        self._merge_folds: dict[str, Any] = {}
        #: TEs licensed to journal-batch their state writes.
        self._batch_state_tes: frozenset[str] = frozenset()

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(self) -> "Runtime":
        """Validate, allocate and materialise the SDG. Returns self."""
        if self._deployed:
            raise RuntimeExecutionError("runtime already deployed")
        self.sdg.validate()
        self.config.validate(self.sdg)
        self.topology.materialise()
        # The substrate is resolved before the transport so its
        # isolation capability can switch off the defensive payload
        # deepcopy (the wire codec serialises every hand-off anyway).
        self.substrate = resolve_substrate(self.config.substrate,
                                           self.config)
        # Static substrate-safety gate: a payload-isolating substrate
        # refuses (or warns about) programs the SDG4xx passes prove
        # unsafe to fork, before any worker exists.
        self._check_substrate_safety()
        self.transport = Transport(
            self.topology,
            capacity=self.config.channel_capacity,
            copy_payloads=self.config.copy_payloads,
            payload_isolated=getattr(self.substrate,
                                     "isolates_payloads", False),
            metrics=self.metrics,
            tracer=self.tracer,
            clock=lambda: self.total_steps,
        )
        self.dispatcher = Dispatcher(self.sdg, self.topology, self.transport,
                                     metrics=self.metrics)
        self.scheduler = resolve_scheduler(self.config.scheduler)
        self._bind_metrics()
        # One detector for the runtime's lifetime, built from the
        # validated config (not per scale check).
        self._detector = BottleneckDetector(
            threshold=self.config.scale_threshold,
            max_instances=self.config.max_instances,
        )
        for te_name in self.sdg.tasks:
            if not self.dispatcher.successors(te_name):
                self.results.setdefault(te_name, [])
        if self.config.optimize:
            self._enable_optimizations()
        self._deployed = True
        self._refresh_instance_gauges()
        # Bind last: a distributed substrate forks its workers here and
        # they must inherit the fully deployed topology (including the
        # resolved capabilities — synthesised fold closures are not
        # picklable, so workers must get them through the fork).
        self.substrate.bind(self)
        return self

    def _check_substrate_safety(self) -> None:
        """Gate a payload-isolating deploy on the SDG4xx passes.

        Reuses the certificate's findings when the deploy carries
        pre-certified capabilities; otherwise runs the passes over the
        SDG (through the attached source program when the graph came
        from ``translate()``). ``"enforce"`` refuses on error-severity
        findings with the offending call chains rendered in the error;
        ``"warn"`` surfaces everything as a ``RuntimeWarning``.
        """
        mode = self.config.substrate_check
        if mode == "off":
            return
        if not getattr(self.substrate, "isolates_payloads", False):
            return
        caps = self.config.capabilities
        if caps is not None and hasattr(caps, "substrate_findings"):
            findings = list(caps.substrate_findings)
        else:
            from repro.analysis.substrate import deploy_findings

            findings = deploy_findings(self.sdg)
        if not findings:
            return
        from repro.analysis.diagnostics import Severity

        errors = [d for d in findings if d.severity is Severity.ERROR]
        rendered = "\n".join(
            "  " + d.render().replace("\n", "\n  ") for d in findings
        )
        if mode == "enforce" and errors:
            raise RuntimeExecutionError(
                f"substrate_check='enforce': refusing to deploy on the "
                f"{self.substrate.name!r} substrate — "
                f"{len(errors)} substrate-safety error(s):\n{rendered}"
            )
        import warnings

        warnings.warn(
            f"substrate-safety findings on the "
            f"{self.substrate.name!r} substrate "
            f"({len(findings)} finding(s)):\n{rendered}",
            RuntimeWarning,
            stacklevel=3,
        )

    def _enable_optimizations(self) -> None:
        """Resolve the capability certificate and arm the relaxed paths.

        Certification is positive-only: a capability the analyzer could
        not prove simply is not in the certificate, and the matching
        relaxed path stays disarmed — an uncertified program runs the
        exact baseline even with ``optimize=True``.
        """
        caps = self.config.capabilities
        if caps is None:
            from repro.analysis.capabilities import certify
            caps = certify(self.sdg)
        self.capabilities = caps
        self.topology.capabilities = caps
        self._merge_folds = dict(getattr(caps, "merge_folds", None) or {})
        self._batch_state_tes = frozenset(
            getattr(caps, "batch_state_tes", None) or ())
        entries = frozenset(
            getattr(caps, "coalescible_entries", None) or ())
        edge_pairs = set(getattr(caps, "coalescible_edges", None) or ())
        edge_indexes = frozenset(
            i for i, edge in enumerate(self.sdg.dataflows)
            if (edge.src, edge.dst) in edge_pairs
        )
        # The tracer records one hop span per envelope; a batch would
        # fold N logical hops into one span, so tracing keeps transport
        # coalescing off (folds and RMW batching are unaffected).
        if self.tracer is None and (edge_indexes or entries):
            self.transport.enable_coalescing(
                edge_indexes, entries, self.config.optimize_batch_max
            )

    def _bind_metrics(self) -> None:
        """Pre-bind metric children so hot-path updates skip label lookup."""
        m = self.metrics
        self._c_steps = m.counter(
            "engine_steps_total", "logical steps (ticks)").labels()
        self._c_stalls = m.counter(
            "engine_stall_ticks_total",
            "steps where all pending work sat on throttled nodes").labels()
        self._c_picks = m.counter(
            "scheduler_picks_total",
            "instance selections, by scheduling policy").labels(
                policy=getattr(self.scheduler, "name",
                               type(self.scheduler).__name__))
        self._c_node_failures = m.counter(
            "engine_node_failures_total", "nodes killed (fault or crash)"
        ).labels()
        self._c_scale_outs = m.counter(
            "engine_scale_outs_total", "reactive/explicit scale-up actions"
        ).labels()
        self._c_merge_early = m.counter(
            "merge_early_completions_total",
            "gather barriers completed via a certified eager fold"
        ).labels()
        self._c_rmw_batches = m.counter(
            "state_rmw_batches_total",
            "journal write batches applied under a BATCHABLE_RMW licence"
        ).labels()
        injected = m.counter(
            "engine_items_injected_total",
            "external items injected, by entry TE")
        processed = m.counter(
            "engine_items_processed_total", "items processed, by TE")
        instances_g = m.gauge(
            "runtime_te_instances", "live instances per TE")
        self._c_injected = {te: injected.labels(te=te)
                            for te in self.sdg.tasks}
        self._c_processed = {te: processed.labels(te=te)
                             for te in self.sdg.tasks}
        self._g_instances = {te: instances_g.labels(te=te)
                             for te in self.sdg.tasks}

    def _refresh_instance_gauges(self) -> None:
        """Re-read live instance counts after a structural change."""
        for te, child in self._g_instances.items():
            child.set(len(self.topology.te_instances(te)))

    # ------------------------------------------------------------------
    # Topology facade (instance and node accessors)
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> dict[int, PhysicalNode]:
        """All nodes ever created, dead ones included."""
        return self.topology.nodes

    @property
    def _partitioners(self) -> dict[str, HashPartitioner]:
        # Backwards-compatible peek used by tests and diagnostics.
        return self.topology._partitioners

    def te_instances(self, te: str) -> list[TEInstance]:
        """Live instances of TE ``te`` (failed slots omitted)."""
        return self.topology.te_instances(te)

    def te_instance(self, te: str, index: int) -> TEInstance | None:
        return self.topology.te_instance(te, index)

    def te_slot_count(self, te: str) -> int:
        return self.topology.te_slot_count(te)

    def se_instances(self, se: str) -> list[SEInstance]:
        return self.topology.se_instances(se)

    def se_instance(self, se: str, index: int) -> SEInstance | None:
        return self.topology.se_instance(se, index)

    def alive_nodes(self) -> list[PhysicalNode]:
        return self.topology.alive_nodes()

    def is_idle(self) -> bool:
        """Whether no envelope is waiting in any live inbox."""
        return self.topology.is_idle()

    def all_te_instances(self) -> Iterator[TEInstance]:
        return self.topology.all_te_instances()

    # ------------------------------------------------------------------
    # External input
    # ------------------------------------------------------------------

    def _require_deployed(self) -> None:
        if not self._deployed:
            raise RuntimeExecutionError(
                "runtime not deployed; call deploy() first"
            )

    def inject(self, entry: str, payload: Any) -> None:
        """Feed one external item to entry TE ``entry`` (§3.1 dataflows).

        Items are buffered source-side like any other dataflow so that a
        failed entry TE can be replayed from "upstream" (here: the
        client-side input log).
        """
        self._require_deployed()
        spec = self.sdg.task(entry)
        if not spec.is_entry:
            raise RuntimeExecutionError(f"TE {entry!r} is not an entry point")
        self._c_injected[entry].inc()
        # One trace per logical injection: a GLOBAL-access broadcast is
        # one item fanned out, so every slot shares the trace id.
        trace_id = (self.tracer.new_trace(self.total_steps)
                    if self.tracer is not None else None)
        if spec.entry_key_fn is not None:
            index = self._keyed_index(spec, spec.entry_key_fn(payload))
            self._inject_to(entry, index, payload, None, None, trace_id)
        elif spec.access is AccessMode.GLOBAL:
            request_id = self.dispatcher.next_request_id()
            slots = self.te_slot_count(entry)
            for index in range(slots):
                self._inject_to(entry, index, payload, request_id, slots,
                                trace_id)
        else:
            slots = self.te_slot_count(entry)
            rr = self._rr.get(("input", entry), 0)
            self._rr[("input", entry)] = rr + 1
            self._inject_to(entry, rr % slots, payload, None, None, trace_id)

    def _inject_to(self, entry: str, index: int, payload: Any,
                   request_id: int | None, expected: int | None,
                   trace_id: int | None = None) -> None:
        payload = self.transport.prepare_payload(payload)
        channel = ChannelId(INPUT_EDGE, "__input__", 0, entry, index)
        seq = self._input_seq.get(entry, 0) + 1
        self._input_seq[entry] = seq
        envelope = Envelope(payload=payload, ts=seq, channel=channel,
                            request_id=request_id,
                            expected_responses=expected,
                            trace_id=trace_id)
        self._input_buffers.setdefault(channel, []).append(envelope)
        self.substrate.deliver(envelope)

    def _keyed_index(self, spec, key: Any) -> int:
        """Partition index for keyed dispatch into TE ``spec``."""
        return self.topology.keyed_index(spec, key)

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def blocked_channels(self) -> list[ChannelId]:
        """Channels currently reporting backpressure.

        Empty when ``channel_capacity`` is unset. In-process this is
        the bounded transport's signal (consumed by the bottleneck
        detector alongside inbox depth); on the multiprocess substrate
        it additionally names congested coordinator->worker wire
        channels (``edge_index == WIRE_EDGE``).
        """
        if self.substrate is None:
            return []
        return self.substrate.blocked_channels()

    def step(self) -> bool:
        """Process one envelope on one TE instance; False when idle.

        Instance selection is the scheduler's call; straggler-credit
        throttling (nodes with ``speed < 1``) lives there too. When
        every pending item sits on a throttled node the step still
        counts (a *stall tick*): logical time passes and hooks run,
        which is what lets the failure detector observe a stalled node.
        """
        self._require_deployed()
        nodes = self.topology.nodes
        instances = self.substrate.runnable([
            inst for inst in self.topology.all_te_instances()
            if nodes[inst.node_id].alive
        ])
        if not instances:
            return False
        instance, throttled = self.scheduler.select(instances, nodes)
        if instance is None:
            if throttled:
                self._c_stalls.inc()
                self._tick()
                return True
            return False
        self._c_picks.inc()
        envelope = instance.inbox.popleft()
        weight = envelope_weight(envelope)
        instance.queued_items -= weight
        self.transport.inbox_gauge(instance.name).dec()
        if self.flight is not None:
            self.flight.record_envelope(self.total_steps, instance,
                                        envelope)
        t0 = (time.perf_counter()
              if self._p_process is not None else 0.0)
        try:
            self.substrate.process(instance, envelope)
        except RuntimeExecutionError as exc:
            if not self._crash_handlers:
                raise
            # Supervised mode: a task crash kills its host node (the
            # envelope survives upstream and is replayed during
            # recovery) and the handlers are told, instead of the
            # whole pipeline aborting.
            if nodes[instance.node_id].alive:
                self.fail_node(instance.node_id)
            for handler in list(self._crash_handlers):
                handler(self, instance, envelope, exc)
        finally:
            if self._p_process is not None:
                self._p_process.add(time.perf_counter() - t0)
        if weight > 1:
            # A coalesced batch served N items in a step the scheduler
            # admitted one item for; charge the straggler credit so
            # batching cannot smuggle work past a throttled node.
            charge = getattr(self.scheduler, "charge", None)
            if charge is not None:
                charge(nodes[instance.node_id], weight - 1)
        self._tick()
        return True

    def _tick(self) -> None:
        """Advance logical time by one step and run the step hooks."""
        self.total_steps += 1
        self._c_steps.inc()
        for hook in list(self._step_hooks):
            hook(self)

    def add_step_hook(self, hook) -> None:
        """Register ``hook(runtime)`` to run after every processed item.

        Hooks drive cross-cutting machinery that must observe logical
        time: periodic checkpoint scheduling, monitors, fault injectors.
        """
        self._step_hooks.append(hook)

    def remove_step_hook(self, hook) -> None:
        self._step_hooks.remove(hook)

    def add_crash_handler(self, handler) -> None:
        """Register ``handler(runtime, instance, envelope, exc)``.

        While at least one handler is registered, a task-code exception
        no longer propagates out of :meth:`step`; the hosting node is
        failed (crash-stop semantics) and every handler is informed —
        the failure detector uses this as its immediate crash report.
        """
        self._crash_handlers.append(handler)

    def remove_crash_handler(self, handler) -> None:
        self._crash_handlers.remove(handler)

    def run_until_idle(self, max_steps: int = 10_000_000) -> int:
        """Drain all pending work; returns the number of items processed.

        Substrate-dispatched: in-process this is the deterministic
        step loop (auto-scale checks between steps); on the
        multiprocess substrate it pumps the coordinator's event loop
        until every worker reports quiescence, then merges worker
        state/results/metrics shards back (a barrier point).
        """
        self._require_deployed()
        return self.substrate.run_until_idle(max_steps)

    def close(self) -> None:
        """Release substrate resources (worker processes, pipes).

        Idempotent; a no-op on the in-process substrate. Distributed
        substrates also shut down automatically when the runtime is
        garbage-collected or the process exits, but tests and services
        should close deterministically.
        """
        if self.substrate is not None:
            self.substrate.shutdown()

    def merged_metrics(self):
        """The runtime's metrics with all substrate shards folded in.

        In-process this is ``self.metrics`` itself. On the multiprocess
        substrate each worker keeps its own registry shard; this
        returns a fresh registry merging the coordinator's series with
        every worker's, as of the last barrier — so observability
        output is substrate-agnostic.
        """
        shards = getattr(self.substrate, "metric_shards", None)
        if not shards:
            return self.metrics
        return self.metrics.merged_with(list(shards))

    def merged_profile(self) -> ProfileRegistry | None:
        """The wall-clock phase profile with worker shards folded in.

        ``None`` when profiling is off. On the multiprocess substrate
        each worker ships its phase shard beside the metrics shard;
        this merges the coordinator's (serialize / wire-wait /
        checkpoint) spans with every worker's (process / dispatch /
        ...) spans into one fresh registry.
        """
        if self.profiler is None:
            return None
        shards = getattr(self.substrate, "profile_shards", None)
        if not shards:
            return self.profiler
        return self.profiler.merged_with(list(shards))

    def poll_telemetry(self, timeout: float = 0.0) -> None:
        """Service substrate telemetry without waiting for a barrier.

        On the multiprocess substrate this pumps the coordinator's
        wire once, absorbing piggybacked metric/profile shards and
        trace shards from idle reports — which is what keeps
        :meth:`merged_metrics` fresh while work is still in flight
        (``repro top --watch`` calls this in its loop). A no-op on
        substrates without a ``poll`` hook (in-process telemetry is
        always current).
        """
        poll = getattr(self.substrate, "poll", None)
        if poll is not None:
            poll(timeout)

    def _process(self, instance: TEInstance, envelope: Envelope) -> None:
        if instance.is_duplicate(envelope):
            return
        # Tracing off costs exactly this `is None` check per item.
        if self.tracer is not None:
            hop = self.tracer.begin_hop(envelope, instance.name,
                                        str(instance.index),
                                        self.total_steps)
            try:
                self._process_item(instance, envelope)
            finally:
                if hop is not None:
                    # Serving one envelope consumes one logical step.
                    self.tracer.end_hop(hop, self.total_steps + 1)
            return
        self._process_item(instance, envelope)

    def _process_item(self, instance: TEInstance, envelope: Envelope) -> None:
        spec = instance.spec
        if type(envelope.payload) is Batch:
            self._process_batch(instance, envelope)
            return
        if spec.is_merge and envelope.request_id is not None:
            self._process_gather(instance, envelope)
            return
        outputs = self._invoke(instance, envelope.payload)
        instance.mark_processed(envelope)
        self._dispatch(instance, outputs, envelope)
        self.nodes[instance.node_id].items_processed += 1
        instance.processed_count += 1
        self._c_processed[instance.name].inc()

    def _process_batch(self, instance: TEInstance,
                       envelope: Envelope) -> None:
        """Serve every payload of a coalesced batch in one step.

        The whole-batch dedup check in :meth:`_process` uses the
        *newest* item's timestamp and is therefore conservative; each
        item re-checks ``last_seen`` individually here, so a crash
        replay that re-delivers an already-processed prefix drops
        exactly that prefix. When the TE holds a ``BATCHABLE_RMW``
        licence its state journal defers per-item ops to one batch
        flush; a mid-batch task crash still flushes the processed
        prefix (those items' ``last_seen`` marks already advanced, so
        their state must be checkpointable).
        """
        key = stream_key(envelope.channel)
        element = None
        if (
            instance.name in self._batch_state_tes
            and instance.se_instance is not None
        ):
            element = instance.se_instance.element
            element.begin_rmw_batch()
        processed = 0
        try:
            for ts, payload in envelope.payload.items:
                if ts <= instance.last_seen.get(key, 0):
                    continue
                item = Envelope(payload=payload, ts=ts,
                                channel=envelope.channel,
                                trace_id=envelope.trace_id)
                outputs = self._invoke(instance, payload)
                instance.mark_processed(item)
                self._dispatch(instance, outputs, item)
                processed += 1
        finally:
            if element is not None:
                element.end_rmw_batch()
                self._c_rmw_batches.inc()
        if processed:
            self.nodes[instance.node_id].items_processed += processed
            instance.processed_count += processed
            self._c_processed[instance.name].inc(processed)

    def _process_gather(self, instance: TEInstance,
                        envelope: Envelope) -> None:
        """Accumulate responses behind the merge barrier (§3.2/§4.2)."""
        request_id = envelope.request_id
        expected = envelope.expected_responses or 1
        gather = instance.pending_gathers.setdefault(
            request_id, GatherState(expected=expected)
        )
        fold = self._merge_folds.get(instance.name)
        if envelope.payload is not NO_RESPONSE:
            if fold is not None:
                # Certified-foldable merge: fold each replica value in
                # as it arrives instead of buffering it behind the
                # barrier — the merge body then sees a single
                # pre-reduced value, in whatever order replicas landed.
                if not gather.folded:
                    gather.accumulator = fold.init()
                    gather.folded = True
                gather.accumulator = fold.step(gather.accumulator,
                                               envelope.payload)
            else:
                gather.payloads.append(envelope.payload)
        gather.received += 1
        instance.mark_processed(envelope)
        if not gather.complete:
            return
        del instance.pending_gathers[request_id]
        if fold is not None:
            self._c_merge_early.inc()
            outputs = self._invoke(
                instance, [gather.accumulator] if gather.folded else []
            )
        else:
            outputs = self._invoke(instance, gather.payloads)
        self._dispatch(instance, outputs, envelope)
        self.nodes[instance.node_id].items_processed += 1
        instance.processed_count += 1
        self._c_processed[instance.name].inc()

    def _invoke(self, instance: TEInstance, payload: Any) -> list[Any]:
        element = (
            instance.se_instance.element
            if instance.se_instance is not None
            else None
        )
        slots = self.te_slot_count(instance.name)
        ctx = TaskContext(state=element, instance_id=instance.index,
                          n_instances=slots)
        if instance.crash_next:
            instance.crash_next = False
            raise RuntimeExecutionError(
                f"TE {instance.name!r}[{instance.index}] crashed "
                f"mid-item on {payload!r} (injected fault)"
            )
        try:
            returned = instance.spec.fn(ctx, payload)
        except Exception as exc:
            raise RuntimeExecutionError(
                f"TE {instance.name!r}[{instance.index}] failed on "
                f"{payload!r}: {exc}"
            ) from exc
        outputs = ctx.drain()
        if returned is not None:
            outputs.append(returned)
        return outputs

    # ------------------------------------------------------------------
    # Dispatching (delegated to the dispatch layer, §4.2 semantics)
    # ------------------------------------------------------------------

    def _dispatch(self, instance: TEInstance, outputs: list[Any],
                  cause: Envelope) -> None:
        # The dispatch span nests inside the process span: "process"
        # is the whole per-item service, "dispatch" the routing slice.
        t0 = (time.perf_counter()
              if self._p_dispatch is not None else 0.0)
        try:
            if not self.dispatcher.successors(instance.name):
                self._collect_result(instance, outputs, cause)
                return
            self.dispatcher.dispatch(instance, outputs, cause)
        finally:
            if self._p_dispatch is not None:
                self._p_dispatch.add(time.perf_counter() - t0)

    def _collect_result(self, instance: TEInstance, outputs: list[Any],
                        cause: Envelope) -> None:
        """Terminal TE: collect outputs, discarding replay duplicates.

        The result consumer is the most-downstream party: it too
        discards duplicates regenerated by deterministic replay.
        """
        if cause.request_id is not None:
            seen_key = (instance.name, "req", cause.request_id,
                        instance.index)
        else:
            seen_key = (instance.name, stream_key(cause.channel),
                        cause.ts)
        if seen_key in self._terminal_seen:
            return
        self._terminal_seen.add(seen_key)
        bucket = self.results.setdefault(instance.name, [])
        bucket.extend(outputs)

    # ------------------------------------------------------------------
    # Failure injection and replay plumbing (used by repro.recovery)
    # ------------------------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Kill a node: inboxes, SE contents and output buffers are lost."""
        node = self.topology.nodes[node_id]
        was_alive = node.alive
        lost = 0
        if was_alive:
            for inst in node.te_instances.values():
                depth = len(inst.inbox)
                if depth:
                    lost += depth
                    self.transport.inbox_gauge(inst.name).dec(depth)
        self.topology.fail_node(node_id)
        if was_alive:
            self._c_node_failures.inc()
            self._refresh_instance_gauges()
            self.events.publish(
                "engine", KIND.NODE_FAILED, self.total_steps,
                node_id=node_id, lost_envelopes=lost,
            )
            if self.flight is not None:
                self.flight.record(self.total_steps, "node_failed",
                                   node=node_id, lost=lost)

    def install_replacement(
        self,
        te_replacements: list[TEInstance],
        se_replacements: list[SEInstance],
    ) -> PhysicalNode:
        """Host replacement instances on a fresh node (recovery R-steps).

        Slot lists grow on demand so that m-to-n recovery can restore a
        single failed instance as several new partitioned instances.
        """
        node = self.topology.install_replacement(te_replacements,
                                                 se_replacements)
        self._refresh_instance_gauges()
        return node

    def set_partitioner(self, se_name: str,
                        partitioner: HashPartitioner) -> None:
        """Replace the routing partitioner of a partitioned SE.

        Used by m-to-n recovery when a failed SE instance is restored as
        ``n`` partitions, changing the partition count.
        """
        self.topology.set_partitioner(se_name, partitioner)
        self.events.publish(
            "engine", KIND.REPARTITION, self.total_steps,
            se=se_name, epoch=self.topology.se_epoch(se_name),
        )

    def se_epoch(self, se_name: str) -> int:
        """The SE's current partitioning epoch (0 until repartitioned)."""
        return self.topology.se_epoch(se_name)

    def replay_into(self, dst_te: str, dst_index: int) -> int:
        """Re-deliver every buffered envelope targeting one instance.

        Covers both upstream TE output buffers and the client-side input
        log. The receiving instance discards duplicates via ``last_seen``.
        Returns the number of envelopes re-delivered.
        """
        count = 0
        for channel, buffered in self._input_buffers.items():
            if channel.dst_te == dst_te and channel.dst_instance == dst_index:
                for envelope in buffered:
                    if self.transport.deliver(envelope):
                        count += 1
        for producer in self.all_te_instances():
            if not self.nodes[producer.node_id].alive:
                continue
            for channel, buffered in producer.output_buffers.items():
                if (
                    channel.dst_te == dst_te
                    and channel.dst_instance == dst_index
                ):
                    for envelope in buffered:
                        if self.transport.deliver(envelope):
                            count += 1
        return count

    def replay_rerouted(self, dst_te: str,
                        recovered: set[int]) -> int:
        """Replay all buffered envelopes towards recovered instances.

        Like :meth:`replay_into`, but recomputes keyed destinations under
        the *current* partitioner — required when a failed SE was
        restored onto a different number of instances (m-to-n recovery,
        Fig. 4). Envelopes whose recomputed destination is not in
        ``recovered`` are skipped (their instance never failed).
        """
        spec = self.sdg.task(dst_te)
        count = 0

        def route(envelope: Envelope) -> int:
            channel = envelope.channel
            if channel.edge_index == INPUT_EDGE:
                if spec.entry_key_fn is not None:
                    return self._keyed_index(
                        spec, spec.entry_key_fn(envelope.payload)
                    )
                return min(channel.dst_instance,
                           self.te_slot_count(dst_te) - 1)
            edge = self.sdg.dataflows[channel.edge_index]
            if edge.key_fn is not None:
                return self._keyed_index(spec, edge.key_fn(envelope.payload))
            return min(channel.dst_instance,
                       self.te_slot_count(dst_te) - 1)

        streams: list[Envelope] = []
        for channel, buffered in self._input_buffers.items():
            if channel.dst_te == dst_te:
                streams.extend(buffered)
        for producer in self.all_te_instances():
            if not self.nodes[producer.node_id].alive:
                continue
            for channel, buffered in producer.output_buffers.items():
                if channel.dst_te == dst_te:
                    streams.extend(buffered)
        # Deliver in per-stream timestamp order. One logical stream may
        # span several buffered channels after a repartition (the same
        # source injected to different destination indices across
        # epochs); since ``last_seen`` is per *stream*, out-of-order
        # delivery across those channels would make the dedup filter
        # drop genuinely unprocessed items during a full log replay.
        streams.sort(key=lambda e: (e.channel.edge_index,
                                    e.channel.src_te,
                                    e.channel.src_instance, e.ts))
        for envelope in streams:
            index = route(envelope)
            if index not in recovered:
                continue
            rerouted = envelope.with_channel(
                envelope.channel.reroute(index), envelope.ts
            )
            if self.transport.deliver(rerouted):
                count += 1
        return count

    def replay_from(self, instance: TEInstance) -> int:
        """Re-send a recovered instance's own output buffers downstream."""
        count = 0
        for buffered in instance.output_buffers.values():
            for envelope in buffered:
                if self.transport.deliver(envelope):
                    count += 1
        return count

    def trim_stream(self, stream: StreamKey, dst_te: str, dst_index: int,
                    up_to_ts: int) -> int:
        """Trim a producer's output buffer after a downstream checkpoint."""
        edge_index, src_te, src_index = stream
        channel = ChannelId(edge_index, src_te, src_index, dst_te, dst_index)
        if edge_index == INPUT_EDGE:
            buffered = self._input_buffers.get(channel)
            if buffered is None:
                return 0
            keep = [e for e in buffered if e.ts > up_to_ts]
            dropped = len(buffered) - len(keep)
            self._input_buffers[channel] = keep
            return dropped
        producer = self.te_instance(src_te, src_index)
        if producer is None:
            return 0
        return producer.trim_output_buffer(channel, up_to_ts)

    def input_buffers_snapshot(self) -> dict[ChannelId, list[Envelope]]:
        return {c: list(b) for c, b in self._input_buffers.items()}

    # ------------------------------------------------------------------
    # Runtime parallelism (§3.3)
    # ------------------------------------------------------------------

    @property
    def scale_events(self) -> list[tuple[int, str, int]]:
        """(step, te_name, new_instance_count) for each scale action."""
        return list(self._scale_events)

    def _maybe_scale(self) -> None:
        for te_name in self._detector.bottlenecks(self):
            try:
                self.scale_up(te_name)
            except RuntimeExecutionError:
                # E.g. a checkpoint is mid-flight on the SE: skip this
                # round; the detector will flag the TE again.
                continue

    def scale_up(self, te_name: str) -> bool:
        """Add one instance to TE ``te_name``, distributing its SE (§3.3).

        Partitioned SEs are re-split across the grown instance set;
        partial SEs gain a fresh replica. Stateless TEs simply gain an
        instance. Returns False when the TE cannot be scaled further.
        """
        spec = self.sdg.task(te_name)
        if spec.is_merge:
            return False
        current = self.te_slot_count(te_name)
        if current >= self.config.max_instances:
            return False
        if spec.state is None:
            self.topology.add_stateless_instance(te_name)
        else:
            se_spec = self.sdg.state(spec.state)
            if se_spec.kind is StateKind.PARTIAL:
                self.topology.add_partial_instance(spec.state)
            else:
                # Queued envelopes for the accessing TEs come back from
                # the topology and are re-routed under the new
                # partitioner so keyed items still meet their partition.
                pending = self.topology.repartition(spec.state, current + 1)
                for envelope in pending:
                    self.transport.inbox_gauge(
                        envelope.channel.dst_te).dec()
                    self._resend_after_reroute(envelope)
                self.events.publish(
                    "engine", KIND.REPARTITION, self.total_steps,
                    se=spec.state,
                    epoch=self.topology.se_epoch(spec.state),
                    drained=len(pending),
                )
        self._scale_events.append(
            (self.total_steps, te_name, self.te_slot_count(te_name))
        )
        self._c_scale_outs.inc()
        self._refresh_instance_gauges()
        self.events.publish(
            "engine", KIND.SCALE_OUT, self.total_steps,
            te=te_name, instances=self.te_slot_count(te_name),
        )
        return True

    def _resend_after_reroute(self, envelope: Envelope) -> None:
        """Re-address a queued envelope after a repartition.

        The envelope is re-*sent* (fresh sequence number on the new
        channel) rather than re-delivered with its old stamp: per-stream
        timestamps are only monotonic towards a fixed destination, so an
        old stamp arriving at a new destination could be mistaken for a
        duplicate. The stale copy is removed from the producer-side
        replay buffer to keep recovery consistent.
        """
        if type(envelope.payload) is Batch:
            # A coalesced batch never lives in a replay buffer (buffers
            # keep the original per-item envelopes), so unbundle and
            # re-route each payload on its own; the recursive calls
            # find and drop the per-item stale copies.
            for ts, payload in envelope.payload.items:
                self._resend_after_reroute(
                    Envelope(payload=payload, ts=ts,
                             channel=envelope.channel,
                             trace_id=envelope.trace_id)
                )
            return
        channel = envelope.channel
        spec = self.sdg.task(channel.dst_te)
        if channel.edge_index == INPUT_EDGE:
            buffered = self._input_buffers.get(channel)
            if buffered is not None and envelope in buffered:
                buffered.remove(envelope)
            if spec.entry_key_fn is not None:
                index = self._keyed_index(
                    spec, spec.entry_key_fn(envelope.payload)
                )
            else:
                index = channel.dst_instance
            self._inject_to(channel.dst_te, index, envelope.payload,
                            envelope.request_id,
                            envelope.expected_responses,
                            envelope.trace_id)
            return
        edge = self.sdg.dataflows[channel.edge_index]
        producer = self.te_instance(channel.src_te, channel.src_instance)
        if producer is not None:
            buffer = producer.output_buffers.get(channel)
            if buffer is not None and envelope in buffer:
                buffer.remove(envelope)
        if edge.key_fn is not None:
            index = self._keyed_index(spec, edge.key_fn(envelope.payload))
        else:
            index = min(channel.dst_instance,
                        self.te_slot_count(channel.dst_te) - 1)
        if producer is not None:
            self.transport.send(producer, channel.edge_index,
                                channel.dst_te, index, envelope.payload,
                                envelope.request_id,
                                envelope.expected_responses,
                                trace_id=envelope.trace_id)
        else:
            # Producer lost to a failure: deliver with the old stamp so
            # downstream dedup against a future replay still works.
            self.transport.deliver(
                envelope.with_channel(channel.reroute(index), envelope.ts)
            )

"""The dispatch layer: the paper's four routing semantics (§4.2).

A TE's outputs travel its outgoing dataflow edges under one of four
dispatch strategies (§3.1): keyed partitioning, round-robin
``ONE_TO_ANY``, ``ONE_TO_ALL`` broadcast with a fresh request id, and
``ALL_TO_ONE`` gather feeding a merge barrier. The :class:`Dispatcher`
implements one method per semantic on top of the transport layer.

Routing is fed by a **successor index** precomputed at deploy time:
``sdg.dataflows`` is scanned once and every TE's outgoing
``(edge_index, edge)`` pairs are stored in a dict. The seed engine
re-scanned (and re-copied) the full edge list for every processed item
— O(edges) per item; the index makes it O(out-degree).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.dispatch import Dispatch
from repro.core.graph import SDG
from repro.errors import RuntimeExecutionError
from repro.obs.metrics import NULL_REGISTRY
from repro.runtime.envelope import NO_RESPONSE, Envelope

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.deployment import Topology
    from repro.runtime.instances import TEInstance
    from repro.runtime.transport import Transport


class Dispatcher:
    """Routes TE outputs along dataflow edges, one method per semantic."""

    def __init__(self, sdg: SDG, topology: "Topology",
                 transport: "Transport", metrics: Any = None) -> None:
        self.sdg = sdg
        self.topology = topology
        self.transport = transport
        #: Broadcasts and global-access injections correlate their
        #: responses through runtime-unique request ids.
        self._request_ids = itertools.count(1)
        registry = metrics if metrics is not None else NULL_REGISTRY
        counter = registry.counter(
            "dispatch_items_total", "items routed, by dispatch semantics")
        # Pre-bound per-semantics children: hot-path increments are a
        # single attribute add, no label resolution.
        self._c_gather = counter.labels(semantics="all_to_one")
        self._c_broadcast = counter.labels(semantics="one_to_all")
        self._c_keyed = counter.labels(semantics="key_partitioned")
        self._c_any = counter.labels(semantics="one_to_any")
        #: Deploy-time successor index: TE name -> [(edge_index, edge)].
        self._successors: dict[str, list[tuple[int, Any]]] = {
            name: [] for name in sdg.tasks
        }
        for index, edge in enumerate(sdg.dataflows):
            self._successors[edge.src].append((index, edge))

    def successors(self, te: str) -> "Sequence[tuple[int, Any]]":
        """The precomputed outgoing ``(edge_index, edge)`` pairs of ``te``."""
        return self._successors[te]

    def export_index(self) -> dict[str, list[tuple[int, str, str]]]:
        """The successor index as plain picklable data.

        Shipped to every worker at deploy by the multiprocess substrate
        (``MSG_HELLO``): each worker verifies the coordinator's routing
        table against its own view before serving traffic, so a
        divergence between the processes' dispatch structures fails
        loudly at bootstrap instead of silently misrouting envelopes.
        """
        return {
            te: [(index, edge.src, edge.dst) for index, edge in pairs]
            for te, pairs in self._successors.items()
        }

    def next_request_id(self) -> int:
        return next(self._request_ids)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def dispatch(self, instance: "TEInstance", outputs: list[Any],
                 cause: Envelope) -> None:
        """Route ``outputs`` along every outgoing edge of ``instance``."""
        for edge_index, edge in self._successors[instance.name]:
            if edge.dispatch is Dispatch.ALL_TO_ONE:
                self.gather(instance, edge_index, edge, outputs, cause)
            elif edge.dispatch is Dispatch.ONE_TO_ALL:
                self.broadcast(instance, edge_index, edge, outputs, cause)
            elif edge.dispatch is Dispatch.KEY_PARTITIONED:
                self.key_partitioned(instance, edge_index, edge, outputs,
                                     cause)
            else:
                self.one_to_any(instance, edge_index, edge, outputs, cause)

    # ------------------------------------------------------------------
    # The four semantics
    # ------------------------------------------------------------------

    def gather(self, instance: "TEInstance", edge_index: int, edge,
               outputs: list[Any], cause: Envelope) -> None:
        """``ALL_TO_ONE``: answer a global-access round trip (§3.2)."""
        if len(outputs) > 1:
            raise RuntimeExecutionError(
                f"TE {instance.name!r} produced {len(outputs)} outputs for "
                f"one request on gather edge {edge.src}->{edge.dst}; "
                f"global-access TEs must emit at most one item per input"
            )
        if cause.request_id is None:
            # Not part of a global-access round trip: forward directly.
            for item in outputs:
                self._c_gather.inc()
                self.transport.send(instance, edge_index, edge.dst, 0,
                                    item, None, None,
                                    trace_id=cause.trace_id)
            return
        item = outputs[0] if outputs else NO_RESPONSE
        self._c_gather.inc()
        self.transport.send(instance, edge_index, edge.dst, 0, item,
                            cause.request_id, cause.expected_responses,
                            trace_id=cause.trace_id)

    def broadcast(self, instance: "TEInstance", edge_index: int, edge,
                  outputs: list[Any], cause: Envelope) -> None:
        """``ONE_TO_ALL``: fan each item out under a fresh request id.

        ``cause`` threads the causal trace id through the fan-out; the
        broadcast itself still mints a fresh request id per item.
        """
        slots = self.topology.te_slot_count(edge.dst)
        for item in outputs:
            request_id = self.next_request_id()
            expected = len(self.topology.te_instances(edge.dst))
            for dst in range(slots):
                self._c_broadcast.inc()
                self.transport.send(instance, edge_index, edge.dst, dst,
                                    item, request_id, expected,
                                    trace_id=cause.trace_id)

    def key_partitioned(self, instance: "TEInstance", edge_index: int,
                        edge, outputs: list[Any], cause: Envelope) -> None:
        """``KEY_PARTITIONED``: route each item to its key's partition."""
        spec = self.sdg.task(edge.dst)
        for item in outputs:
            dst = self.topology.keyed_index(spec, edge.key_fn(item))
            self._c_keyed.inc()
            self.transport.send(instance, edge_index, edge.dst, dst, item,
                                cause.request_id, cause.expected_responses,
                                trace_id=cause.trace_id)

    def one_to_any(self, instance: "TEInstance", edge_index: int, edge,
                   outputs: list[Any], cause: Envelope) -> None:
        """``ONE_TO_ANY``: deterministic producer-local round-robin."""
        for item in outputs:
            slots = self.topology.te_slot_count(edge.dst)
            # The destination is derived from the producer's own
            # per-edge send counter — producer-local state that
            # is checkpointed and restored — so deterministic
            # re-execution after recovery reproduces the exact
            # original routing and duplicates are recognised.
            sent = instance.out_seq.get(edge_index, 0)
            self._c_any.inc()
            self.transport.send(instance, edge_index, edge.dst,
                                sent % slots, item, cause.request_id,
                                cause.expected_responses,
                                trace_id=cause.trace_id)

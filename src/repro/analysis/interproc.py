"""Interprocedural pass — laundered §4.1 violations (``SDG101`` /
``SDG102`` with call chains) and journal bypass through parameters
(``SDG303``).

The direct scans already report a violation *where it is written*: a
``random.random()`` inside a helper method is flagged at the helper's
definition when the translator scans it. What they cannot see is the
*reachability* — which entry methods actually execute that helper —
nor violations hiding in module-level free functions, which are not
class methods and were never scanned at all.

This pass walks the per-entry :class:`~repro.analysis.summaries.
MethodSummary` objects and reports every transitively reachable
restriction violation against the entry, with the full call chain
(``entry:12 → _helper:48``) rendered in both text and JSON output. It
also reports a journal bypass (``se._backend`` and friends) inside a
callee that received the state element as an argument — the
``self._launder(self.table)`` pattern the intra-procedural SDG303 scan
cannot connect.
"""

from __future__ import annotations

import ast
from dataclasses import replace

from repro.analysis.diagnostics import DiagnosticSink
from repro.analysis.model import ProgramModel
from repro.analysis.summaries import ChainHop, EffectSite
from repro.translate.restrictions import (
    _NONDETERMINISTIC_BUILTINS,
)


def diagnostic_chain(owner: str, effect: EffectSite) -> tuple:
    """The ``((function, lineno), ...)`` frames of an effect reached
    from ``owner``, ending at the offending site itself."""
    functions = [owner] + [hop.fn for hop in effect.chain]
    lines = [hop.lineno for hop in effect.chain] + [effect.lineno]
    return tuple(zip(functions, lines))


def run(model: ProgramModel, sink: DiagnosticSink) -> None:
    interproc = model.interproc
    graph = interproc.graph
    for method, ir in model.entries.items():
        summary = interproc.get(method)
        for effect in summary.effects:
            if not effect.chain:
                continue  # direct sites are the restriction scan's job
            _emit_restriction(method, effect, sink)
        _check_param_bypass(model, method, ir.fn_ast, sink)


def _emit_restriction(method: str, effect: EffectSite,
                      sink: DiagnosticSink) -> None:
    via = effect.chain[0]
    path = " → ".join(hop.fn for hop in effect.chain)
    if effect.kind == "nondet":
        if effect.detail in _NONDETERMINISTIC_BUILTINS:
            message = (
                f"method {method!r} transitively calls the builtin "
                f"{effect.detail!r} (through {path}): its result is "
                f"process-dependent, so replay recovery and forked "
                f"workers compute different values (§4.1)"
            )
            hint = ("derive keys and identities from the data itself, "
                    "never from hash()/id()")
        else:
            message = (
                f"method {method!r} transitively calls into "
                f"{effect.detail!r} (through {path}): translated "
                f"programs must be deterministic — recovery re-executes "
                f"computation and filters duplicates by identity (§4.1)"
            )
            hint = ("pass the nondeterministic value in as an entry "
                    "argument computed by the caller")
        code = "SDG101"
    else:
        message = (
            f"method {method!r} transitively calls into "
            f"{effect.detail!r} (through {path}): translated programs "
            f"must be location independent — TEs run on (and migrate "
            f"between) arbitrary nodes (§4.1)"
        )
        hint = ("move environment interaction outside the program; "
                "feed external data in through entry methods")
        code = "SDG102"
    sink.emit(
        code, message, lineno=via.lineno, origin=method, hint=hint,
        chain=diagnostic_chain(method, effect),
    )


def _check_param_bypass(model: ProgramModel, method: str,
                        fn_ast: ast.FunctionDef,
                        sink: DiagnosticSink) -> None:
    """SDG303 for state elements handed to a callee that bypasses the
    journalled API through the parameter."""
    interproc = model.interproc
    graph = interproc.graph
    fields = set(model.result.fields)
    for call in ast.walk(fn_ast):
        if not isinstance(call, ast.Call):
            continue
        target = graph.resolve_call(method, call)
        if target is None:
            continue
        callee = interproc.get(target)
        for position, arg in enumerate(call.args):
            bypass = callee.param_bypass.get(position)
            if bypass is None:
                continue
            field = _state_field(arg, fields)
            if field is None:
                continue
            effect = replace(
                bypass,
                chain=(ChainHop(fn=target, lineno=call.lineno),)
                + bypass.chain,
            )
            path = " → ".join(hop.fn for hop in effect.chain)
            sink.emit(
                "SDG303",
                f"method {method!r} passes state element {field!r} "
                f"into {path}, which bypasses the journalled "
                f"StateBackend API ({bypass.detail}); mutations made "
                f"there are invisible to checkpoints and replay "
                f"recovery (§5)",
                lineno=call.lineno, col=call.col_offset,
                origin=method,
                hint="mutate state only through the journalled SE "
                     "methods, on the field itself, inside the entry",
                chain=diagnostic_chain(method, effect),
            )


def _state_field(node: ast.expr, fields: set[str]) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in fields
    ):
        return node.attr
    return None

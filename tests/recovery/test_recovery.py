"""End-to-end failure/recovery tests: checkpoint + replay semantics."""

import pytest

from repro.errors import RecoveryError
from repro.recovery import BackupStore, CheckpointManager, RecoveryManager
from repro.runtime import Runtime, RuntimeConfig

from tests.helpers import build_cf_sdg, build_kv_sdg


def kv_cluster(n_partitions=1):
    runtime = Runtime(build_kv_sdg(),
                      RuntimeConfig(se_instances={"table": n_partitions}))
    runtime.deploy()
    store = BackupStore(m_targets=2)
    return runtime, CheckpointManager(runtime, store), RecoveryManager(
        runtime, store
    )


def table_contents(runtime):
    merged = {}
    for inst in runtime.se_instances("table"):
        merged.update(dict(inst.element.items()))
    return merged


class TestOneToOneRecovery:
    def test_recovery_with_checkpoint_and_replay(self):
        runtime, ckpt, rec = kv_cluster()
        for i in range(30):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        node = runtime.se_instance("table", 0).node_id
        ckpt.checkpoint(node)
        # Post-checkpoint updates exist only in upstream buffers.
        for i in range(30, 50):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        assert table_contents(runtime) == {i: i for i in range(50)}

    def test_recovery_without_any_checkpoint_replays_everything(self):
        runtime, _ckpt, rec = kv_cluster()
        for i in range(25):
            runtime.inject("serve", ("put", i, i * 2))
        runtime.run_until_idle()
        node = runtime.se_instance("table", 0).node_id
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        assert table_contents(runtime) == {i: i * 2 for i in range(25)}

    def test_items_lost_in_inbox_are_replayed(self):
        runtime, ckpt, rec = kv_cluster()
        for i in range(10):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        node = runtime.se_instance("table", 0).node_id
        ckpt.checkpoint(node)
        # These sit unprocessed in the inbox when the node dies.
        for i in range(10, 20):
            runtime.inject("serve", ("put", i, i))
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        assert table_contents(runtime) == {i: i for i in range(20)}

    def test_recovered_state_matches_failure_free_run(self):
        def run(fail: bool):
            runtime, ckpt, rec = kv_cluster()
            for i in range(40):
                runtime.inject("serve", ("put", i % 7, i))
            runtime.run_until_idle()
            node = runtime.se_instance("table", 0).node_id
            ckpt.checkpoint(node)
            for i in range(40, 80):
                runtime.inject("serve", ("put", i % 7, i))
            runtime.run_until_idle()
            if fail:
                runtime.fail_node(node)
                rec.recover_node(node)
                runtime.run_until_idle()
            return table_contents(runtime)

        assert run(fail=True) == run(fail=False)

    def test_no_duplicate_get_results_after_recovery(self):
        runtime, ckpt, rec = kv_cluster()
        runtime.inject("serve", ("put", "k", 1))
        runtime.inject("serve", ("get", "k", None))
        runtime.run_until_idle()
        node = runtime.se_instance("table", 0).node_id
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        # Replay re-executes the get, but the client discards the
        # duplicate response.
        assert runtime.results["serve"] == [("k", 1)]

    def test_only_failed_partition_is_recovered(self):
        runtime, ckpt, rec = kv_cluster(n_partitions=3)
        for i in range(60):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        survivors = {
            inst.index: dict(inst.element.items())
            for inst in runtime.se_instances("table")
        }
        node = runtime.se_instance("table", 1).node_id
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        for inst in runtime.se_instances("table"):
            assert dict(inst.element.items()) == survivors[inst.index]

    def test_recover_alive_node_rejected(self):
        runtime, _ckpt, rec = kv_cluster()
        node = runtime.se_instance("table", 0).node_id
        with pytest.raises(RecoveryError, match="not failed"):
            rec.recover_node(node)

    def test_checkpoint_mid_flight_failure_uses_previous(self):
        runtime, ckpt, rec = kv_cluster()
        for i in range(10):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        node = runtime.se_instance("table", 0).node_id
        ckpt.checkpoint(node)
        pending = ckpt.begin(node)
        for i in range(10, 15):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        runtime.fail_node(node)
        assert ckpt.complete(pending) is None
        rec.recover_node(node)
        runtime.run_until_idle()
        assert table_contents(runtime) == {i: i for i in range(15)}


class TestOneToNRecovery:
    def test_restore_to_two_partitions(self):
        runtime, ckpt, rec = kv_cluster(n_partitions=1)
        for i in range(40):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        node = runtime.se_instance("table", 0).node_id
        ckpt.checkpoint(node)
        for i in range(40, 60):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        runtime.fail_node(node)
        nodes = rec.recover_node(node, n_new=2)
        assert len(nodes) == 2
        runtime.run_until_idle()
        assert len(runtime.se_instances("table")) == 2
        assert table_contents(runtime) == {i: i for i in range(60)}

    def test_partitions_are_disjoint_after_restore(self):
        runtime, ckpt, rec = kv_cluster(n_partitions=1)
        for i in range(30):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        node = runtime.se_instance("table", 0).node_id
        ckpt.checkpoint(node)
        runtime.fail_node(node)
        rec.recover_node(node, n_new=3)
        runtime.run_until_idle()
        partitioner = runtime._partitioners["table"]
        for inst in runtime.se_instances("table"):
            for key in inst.element.keys():
                assert partitioner.partition(key) == inst.index

    def test_reads_after_restore_hit_new_partitions(self):
        runtime, ckpt, rec = kv_cluster(n_partitions=1)
        for i in range(20):
            runtime.inject("serve", ("put", i, i + 100))
        runtime.run_until_idle()
        node = runtime.se_instance("table", 0).node_id
        ckpt.checkpoint(node)
        runtime.fail_node(node)
        rec.recover_node(node, n_new=2)
        runtime.run_until_idle()
        for i in range(20):
            runtime.inject("serve", ("get", i, None))
        runtime.run_until_idle()
        assert sorted(runtime.results["serve"]) == [
            (i, i + 100) for i in range(20)
        ]

    def test_one_to_n_requires_single_instance(self):
        runtime, ckpt, rec = kv_cluster(n_partitions=2)
        node = runtime.se_instance("table", 0).node_id
        runtime.fail_node(node)
        with pytest.raises(RecoveryError, match="only instance"):
            rec.recover_node(node, n_new=2)

    def test_invalid_n_new_rejected(self):
        runtime, _ckpt, rec = kv_cluster()
        node = runtime.se_instance("table", 0).node_id
        runtime.fail_node(node)
        with pytest.raises(RecoveryError, match="n_new"):
            rec.recover_node(node, n_new=0)


class TestCFRecovery:
    RATINGS = [(0, 0, 5), (0, 1, 3), (1, 0, 4), (1, 2, 2), (2, 1, 1)]

    def cf_cluster(self):
        runtime = Runtime(
            build_cf_sdg(),
            RuntimeConfig(se_instances={"userItem": 1, "coOcc": 2}),
        ).deploy()
        store = BackupStore(m_targets=2)
        return runtime, CheckpointManager(runtime, store), RecoveryManager(
            runtime, store
        )

    def baseline_recommendation(self):
        runtime, _c, _r = self.cf_cluster()
        for rating in self.RATINGS:
            runtime.inject("updateUserItem", rating)
        runtime.run_until_idle()
        runtime.inject("getUserVec", 0)
        runtime.run_until_idle()
        return runtime.results["mergeRec"][0][1].to_list()

    def test_useritem_node_recovery_preserves_recommendations(self):
        runtime, ckpt, rec = self.cf_cluster()
        for rating in self.RATINGS[:3]:
            runtime.inject("updateUserItem", rating)
        runtime.run_until_idle()
        node = runtime.se_instance("userItem", 0).node_id
        ckpt.checkpoint(node)
        for rating in self.RATINGS[3:]:
            runtime.inject("updateUserItem", rating)
        runtime.run_until_idle()
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        runtime.inject("getUserVec", 0)
        runtime.run_until_idle()
        assert (
            runtime.results["mergeRec"][0][1].to_list()
            == self.baseline_recommendation()
        )

    def test_merge_node_recovery_mid_gather(self):
        runtime, _ckpt, rec = self.cf_cluster()
        for rating in self.RATINGS:
            runtime.inject("updateUserItem", rating)
        runtime.run_until_idle()
        runtime.inject("getUserVec", 0)
        # Run a few steps: the broadcast fans out, partial responses may
        # reach the merge node before it dies.
        for _ in range(4):
            runtime.step()
        merge_node = runtime.te_instances("mergeRec")[0].node_id
        runtime.fail_node(merge_node)
        rec.recover_node(merge_node)
        runtime.run_until_idle()
        results = runtime.results["mergeRec"]
        assert len(results) == 1
        assert results[0][1].to_list() == self.baseline_recommendation()

"""Unit tests for the KeyValueMap state element."""

import pytest

from repro.state import KeyValueMap


class TestKeyValueMapBasics:
    def test_get_missing_returns_default(self):
        kv = KeyValueMap()
        assert kv.get("missing") is None
        assert kv.get("missing", 42) == 42

    def test_put_get_roundtrip(self):
        kv = KeyValueMap()
        kv.put("a", 1)
        assert kv.get("a") == 1

    def test_put_overwrites(self):
        kv = KeyValueMap()
        kv.put("a", 1)
        kv.put("a", 2)
        assert kv.get("a") == 2
        assert len(kv) == 1

    def test_delete(self):
        kv = KeyValueMap()
        kv.put("a", 1)
        kv.delete("a")
        assert not kv.contains("a")

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            KeyValueMap().delete("nope")

    def test_increment_from_absent(self):
        kv = KeyValueMap()
        assert kv.increment("w") == 1
        assert kv.increment("w", 4) == 5

    def test_keys_and_items(self):
        kv = KeyValueMap()
        kv.put("a", 1)
        kv.put("b", 2)
        assert sorted(kv.keys()) == ["a", "b"]
        assert sorted(kv.items()) == [("a", 1), ("b", 2)]


class TestKeyValueMapCheckpointing:
    def test_reads_prefer_dirty_state(self):
        kv = KeyValueMap()
        kv.put("k", "old")
        kv.begin_checkpoint()
        kv.put("k", "new")
        assert kv.get("k") == "new"
        assert dict(kv.snapshot_items())["k"] == "old"
        kv.consolidate()
        assert kv.get("k") == "new"

    def test_delete_during_checkpoint_uses_tombstone(self):
        kv = KeyValueMap()
        kv.put("k", 1)
        kv.begin_checkpoint()
        kv.delete("k")
        assert not kv.contains("k")
        assert kv.get("k", "gone") == "gone"
        assert "k" in dict(kv.snapshot_items())
        kv.consolidate()
        assert not kv.contains("k")

    def test_delete_of_tombstoned_key_raises(self):
        kv = KeyValueMap()
        kv.put("k", 1)
        kv.begin_checkpoint()
        kv.delete("k")
        with pytest.raises(KeyError):
            kv.delete("k")
        kv.consolidate()

    def test_insert_then_read_of_new_key_during_checkpoint(self):
        kv = KeyValueMap()
        kv.begin_checkpoint()
        kv.put("fresh", 7)
        assert kv.get("fresh") == 7
        assert kv.items() == [("fresh", 7)]
        assert kv.consolidate() == 1

    def test_len_is_overlay_aware(self):
        kv = KeyValueMap()
        kv.put("a", 1)
        kv.begin_checkpoint()
        kv.put("b", 2)
        kv.delete("a")
        assert len(kv) == 1
        kv.consolidate()
        assert len(kv) == 1

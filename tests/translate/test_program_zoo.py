"""A zoo of small annotated programs stressing the translator.

Each program covers a pattern the paper's translation rules must
handle: chained state elements, shared keys, partial-then-partitioned
hops, consecutive global accesses with double merges, control flow
inside TEs, and the rule-4 barrier restriction. Every runnable program
is checked for sequential/distributed equivalence — the translator's
correctness contract.
"""

import pytest

from repro import (
    Partial,
    Partitioned,
    SDGProgram,
    TranslationError,
    collection,
    entry,
    global_,
)
from repro.core import AccessMode, Dispatch
from repro.state import KeyValueMap, Vector


class ChainedPartitioned(SDGProgram):
    """Two partitioned SEs touched in sequence, same key."""

    accounts = Partitioned(KeyValueMap, key="user")
    audit = Partitioned(KeyValueMap, key="user")

    @entry
    def deposit(self, user, amount):
        balance = self.accounts.get(user)
        if balance is None:
            balance = 0
        self.accounts.put(user, balance + amount)
        self.audit.put(user, amount)

    @entry
    def balance_of(self, user):
        return (user, self.accounts.get(user))

    @entry
    def last_audit(self, user):
        return (user, self.audit.get(user))


class TestChainedPartitioned:
    def test_splits_at_second_state_element(self):
        result = ChainedPartitioned.translate()
        info = result.entry_info("deposit")
        assert len(info.te_names) == 2
        tasks = result.sdg.tasks
        assert tasks[info.te_names[0]].state == "accounts"
        assert tasks[info.te_names[1]].state == "audit"

    def test_inter_te_edge_is_keyed(self):
        result = ChainedPartitioned.translate()
        info = result.entry_info("deposit")
        edge = next(e for e in result.sdg.dataflows
                    if e.src == info.te_names[0])
        assert edge.dispatch is Dispatch.KEY_PARTITIONED
        assert edge.key_name == "user"

    def test_equivalence(self):
        seq = ChainedPartitioned()
        app = ChainedPartitioned.launch(accounts=3, audit=2)
        for i in range(40):
            seq.deposit(i % 7, i)
            app.deposit(i % 7, i)
        app.run()
        for user in range(7):
            app.balance_of(user)
            app.last_audit(user)
        app.run()
        assert sorted(app.results("balance_of")) == sorted(
            seq.balance_of(user) for user in range(7)
        )
        assert sorted(app.results("last_audit")) == sorted(
            seq.last_audit(user) for user in range(7)
        )


class PartialThenPartitioned(SDGProgram):
    """A local partial hop before a keyed partitioned hop."""

    cache = Partial(KeyValueMap)
    profiles = Partitioned(KeyValueMap, key="user")

    @entry
    def track(self, user, item):
        self.cache.increment(item)
        self.profiles.put(user, item)

    @entry
    def profile_of(self, user):
        return (user, self.profiles.get(user))


class TestPartialThenPartitioned:
    def test_dispatch_sequence(self):
        result = PartialThenPartitioned.translate()
        info = result.entry_info("track")
        assert len(info.te_names) == 2
        tasks = result.sdg.tasks
        assert tasks[info.te_names[0]].access is AccessMode.LOCAL
        assert tasks[info.te_names[1]].access is AccessMode.PARTITIONED
        edge = next(e for e in result.sdg.dataflows
                    if e.src == info.te_names[0])
        assert edge.dispatch is Dispatch.KEY_PARTITIONED

    def test_entry_is_load_balanced_not_keyed(self):
        result = PartialThenPartitioned.translate()
        te = result.sdg.task(result.entry_info("track").entry_te)
        assert te.entry_key_fn is None  # local access => one-to-any

    def test_equivalence(self):
        seq = PartialThenPartitioned()
        app = PartialThenPartitioned.launch(cache=2, profiles=3)
        for i in range(30):
            seq.track(i % 5, f"item{i % 4}")
            app.track(i % 5, f"item{i % 4}")
        app.run()
        for user in range(5):
            app.profile_of(user)
        app.run()
        assert sorted(app.results("profile_of")) == sorted(
            seq.profile_of(user) for user in range(5)
        )
        # The partial cache counts are load-balanced but conserved.
        total = sum(
            sum(v for _k, v in element.items())
            for element in app.state_of("cache")
        )
        assert total == 30


class DoubleGlobal(SDGProgram):
    """Two global accesses, each reconciled by its own merge."""

    stats = Partial(KeyValueMap)

    @entry
    def record(self, value):
        self.stats.increment("count")
        self.stats.increment("sum", value)

    @entry
    def mean(self):
        counts = global_(self.stats).get("count", 0)
        total_count = self.sum_up(collection(counts))
        sums = global_(self.stats).get("sum", 0)
        total_sum = self.sum_up(collection(sums))
        return total_sum / total_count if total_count else 0.0

    def sum_up(self, values):
        total = 0
        for value in values:
            total = total + value
        return total


class TestDoubleGlobal:
    def test_five_te_pipeline(self):
        result = DoubleGlobal.translate()
        info = result.entry_info("mean")
        # global -> merge -> global -> merge.
        assert len(info.te_names) == 4
        modes = [result.sdg.tasks[name] for name in info.te_names]
        assert modes[0].access is AccessMode.GLOBAL
        assert modes[1].is_merge
        assert modes[2].access is AccessMode.GLOBAL
        assert modes[3].is_merge

    @pytest.mark.parametrize("replicas", [1, 3])
    def test_equivalence(self, replicas):
        seq = DoubleGlobal()
        app = DoubleGlobal.launch(stats=replicas)
        values = [3, 5, 7, 9, 11, 13]
        for value in values:
            seq.record(value)
            app.record(value)
        app.run()
        app.mean()
        app.run()
        assert app.results("mean") == [seq.mean()]
        assert seq.mean() == pytest.approx(sum(values) / len(values))


class LoopInsideTE(SDGProgram):
    """While/for loops and conditionals stay inside one TE."""

    totals = Partitioned(KeyValueMap, key="bucket")

    @entry
    def add_digits(self, bucket, number):
        total = 0
        remaining = number
        while remaining > 0:
            total = total + remaining % 10
            remaining = remaining // 10
        if total % 2 == 0:
            label = "even"
        else:
            label = "odd"
        self.totals.put(bucket, (label, total))

    @entry
    def read(self, bucket):
        return self.totals.get(bucket)


class TestLoopInsideTE:
    def test_single_te(self):
        result = LoopInsideTE.translate()
        assert len(result.entry_info("add_digits").te_names) == 1

    def test_equivalence(self):
        seq = LoopInsideTE()
        app = LoopInsideTE.launch(totals=2)
        for i, number in enumerate((12345, 808, 9, 1000, 77)):
            seq.add_digits(i, number)
            app.add_digits(i, number)
        app.run()
        for i in range(5):
            app.read(i)
        app.run()
        assert sorted(app.results("read")) == sorted(
            seq.read(i) for i in range(5)
        )


class VectorState(SDGProgram):
    """A partial Vector SE exercised through arithmetic helpers."""

    totals = Partial(Vector)

    @entry
    def accumulate(self, values):
        index = 0
        for value in values:
            self.totals.add(index, value)
            index = index + 1

    @entry
    def grand_total(self):
        partials = global_(self.totals).to_list()
        result = self.combine(collection(partials))
        return result

    def combine(self, lists):
        total = 0.0
        for values in lists:
            for value in values:
                total = total + value
        return total


class TestVectorState:
    @pytest.mark.parametrize("replicas", [1, 2, 4])
    def test_equivalence(self, replicas):
        seq = VectorState()
        app = VectorState.launch(totals=replicas)
        batches = [[1.0, 2.0], [3.0], [4.0, 5.0, 6.0], [7.0]]
        for batch in batches:
            seq.accumulate(batch)
            app.accumulate(batch)
        app.run()
        app.grand_total()
        app.run()
        assert app.results("grand_total") == [seq.grand_total()]
        assert seq.grand_total() == 28.0


class TestRule4Rejection:
    def test_state_access_after_global_rejected(self):
        class Unreconciled(SDGProgram):
            replicas = Partial(KeyValueMap)
            sink = Partitioned(KeyValueMap, key="key")

            @entry
            def bad(self, key):
                value = global_(self.replicas).get(key)
                self.sink.put(key, value)  # multi-valued, unmerged!

        with pytest.raises(TranslationError, match="rule 4"):
            Unreconciled.translate()

    def test_global_as_final_block_allowed(self):
        class BroadcastWrite(SDGProgram):
            replicas = Partial(KeyValueMap)

            @entry
            def seed(self, key, value):
                global_(self.replicas).put(key, value)

        app = BroadcastWrite.launch(replicas=3)
        app.seed("config", 9)
        app.run()
        for element in app.state_of("replicas"):
            assert element.get("config") == 9

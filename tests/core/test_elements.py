"""Unit tests for element specs and the task context."""

import pytest

from repro.core import AccessMode, Dispatch, TaskContext
from repro.core.elements import (
    DataflowEdge,
    StateElementSpec,
    StateKind,
    TaskElementSpec,
)
from repro.errors import RuntimeExecutionError
from repro.runtime import Runtime
from repro.state import KeyValueMap

from tests.helpers import build_kv_sdg, noop


class TestTaskElementSpec:
    def test_access_without_state_rejected(self):
        with pytest.raises(ValueError, match="names no state"):
            TaskElementSpec(name="t", fn=noop, access=AccessMode.LOCAL)

    def test_state_without_access_rejected(self):
        with pytest.raises(ValueError, match="no access mode"):
            TaskElementSpec(name="t", fn=noop, state="s")

    def test_stateless_spec_is_fine(self):
        spec = TaskElementSpec(name="t", fn=noop)
        assert spec.access is AccessMode.NONE


class TestStateElementSpec:
    def test_partitioned_defaults_key_name(self):
        spec = StateElementSpec(name="s", kind=StateKind.PARTITIONED,
                                factory=KeyValueMap)
        assert spec.partition_by == "key"

    def test_partial_has_no_key(self):
        spec = StateElementSpec(name="s", kind=StateKind.PARTIAL,
                                factory=KeyValueMap)
        assert spec.partition_by is None


class TestDataflowEdge:
    def test_keyed_edge_requires_key_fn(self):
        with pytest.raises(ValueError, match="key_fn"):
            DataflowEdge(src="a", dst="b",
                         dispatch=Dispatch.KEY_PARTITIONED)

    def test_plain_edge_fine(self):
        edge = DataflowEdge(src="a", dst="b",
                            dispatch=Dispatch.ONE_TO_ANY)
        assert edge.key_name is None


class TestTaskContext:
    def test_emit_then_drain(self):
        ctx = TaskContext()
        ctx.emit(1)
        ctx.emit(2)
        assert ctx.drain() == [1, 2]
        assert ctx.drain() == []

    def test_defaults(self):
        ctx = TaskContext()
        assert ctx.state is None
        assert ctx.instance_id == 0
        assert ctx.n_instances == 1


class TestDeployGuards:
    def test_inject_before_deploy_rejected(self):
        runtime = Runtime(build_kv_sdg())
        with pytest.raises(RuntimeExecutionError, match="not deployed"):
            runtime.inject("serve", ("put", 1, 1))

    def test_step_before_deploy_rejected(self):
        runtime = Runtime(build_kv_sdg())
        with pytest.raises(RuntimeExecutionError, match="not deployed"):
            runtime.step()

"""Failure recovery for SDGs (§5).

The mechanism combines **asynchronous local checkpoints** with
**message replay**:

* nodes checkpoint independently (no global coordination). A checkpoint
  freezes each local SE behind a dirty-state overlay so processing
  continues while the consistent snapshot is chunked and backed up;
* checkpoints carry, per TE instance, the vector of last-processed
  timestamps per input stream, the output buffers and the gather state,
  so that replay after recovery is exact;
* checkpoints are split into chunks stored on *m* backup targets and can
  be restored to *n* new nodes in parallel (Fig. 4);
* after restoring the last checkpoint, upstream output buffers are
  replayed and downstream nodes discard duplicates by timestamp — no
  global rollback, no output-commit problem;
* under an incremental :class:`CheckpointPolicy`, most cycles persist
  only a delta (the keys mutated since the previous cycle) and the
  restore path folds the full base plus its ordered deltas, falling
  back to base-only recovery when a delta is corrupt or missing.
"""

from repro.recovery.backup import (
    BackupStore,
    DiskBackupStore,
    chunk_checksum,
)
from repro.recovery.checkpoint import (
    CheckpointManager,
    NodeCheckpoint,
    PendingCheckpoint,
    TEMeta,
)
from repro.recovery.policy import CheckpointPolicy
from repro.recovery.manager import RecoveryManager
from repro.recovery.scheduler import CheckpointScheduler
from repro.recovery.supervisor import RecoveryEvent, RecoverySupervisor

__all__ = [
    "BackupStore",
    "CheckpointManager",
    "CheckpointPolicy",
    "CheckpointScheduler",
    "DiskBackupStore",
    "NodeCheckpoint",
    "PendingCheckpoint",
    "RecoveryEvent",
    "RecoveryManager",
    "RecoverySupervisor",
    "TEMeta",
    "chunk_checksum",
]

"""Quickstart: a partitioned key/value store in ~20 lines.

Write an ordinary imperative class, annotate its state, mark the entry
points — then either call it sequentially or launch it as a distributed
stateful dataflow graph. Run with:

    python examples/quickstart.py
"""

from repro import Partitioned, SDGProgram, entry
from repro.state import KeyValueMap


class Store(SDGProgram):
    """A key/value store whose table is partitioned by key."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def put(self, key, value):
        self.table.put(key, value)

    @entry
    def get(self, key):
        return self.table.get(key)


def main():
    # --- sequential execution: it's just a Python class ---------------
    local = Store()
    local.put("answer", 42)
    print(f"sequential get('answer') -> {local.get('answer')}")

    # --- distributed execution: translate + deploy ---------------------
    app = Store.launch(table=4)  # 4 partitions on 4 logical nodes
    for i in range(100):
        app.put(f"key{i}", i * i)
    app.get("key7")
    app.get("key42")
    app.run()  # drain the pipeline
    print(f"distributed results: {app.results('get')}")

    # The translation is inspectable: the SDG and its allocation.
    result = Store.translate()
    print(f"\nSDG: {result.sdg}")
    print(f"entry TEs: {[t.name for t in result.sdg.entries()]}")
    sizes = [len(inst.element)
             for inst in app.runtime.se_instances("table")]
    print(f"keys per partition: {sizes} (total {sum(sizes)})")


if __name__ == "__main__":
    main()

"""Checkpoint backup stores.

A backup store models the "m nodes" of Fig. 4: checkpoint chunks are
distributed round-robin across backup targets so that no single disk or
NIC becomes a bottleneck during backup or restore. Two implementations
are provided — an in-memory store for tests and fast experiments, and a
disk-backed store that actually serialises chunks to files.
"""

from __future__ import annotations

import os
import pickle
from typing import TYPE_CHECKING

from repro.errors import RecoveryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.recovery.checkpoint import NodeCheckpoint


class BackupStore:
    """In-memory chunked checkpoint storage across ``m`` backup targets.

    Only the latest checkpoint per (runtime) node is retained, matching
    the paper's protocol where older checkpoints are superseded.
    """

    def __init__(self, m_targets: int = 2) -> None:
        if m_targets < 1:
            raise RecoveryError("backup store needs at least one target")
        self.m_targets = m_targets
        #: target index -> {(node_id, se_key, chunk_index): chunk}
        self._targets: list[dict] = [{} for _ in range(m_targets)]
        #: node_id -> checkpoint metadata (se chunk counts, TE meta)
        self._meta: dict[int, "NodeCheckpoint"] = {}
        self._rr = 0

    # -- write path ------------------------------------------------------

    def save(self, checkpoint: "NodeCheckpoint") -> None:
        """Persist a node checkpoint, spreading chunks over targets (B3)."""
        node_id = checkpoint.node_id
        self._evict(node_id)
        for se_key, chunks in checkpoint.se_chunks.items():
            for chunk in chunks:
                target = self._targets[self._rr % self.m_targets]
                self._rr += 1
                target[(node_id, se_key, chunk.index)] = chunk
        self._meta[node_id] = checkpoint

    def _evict(self, node_id: int) -> None:
        for target in self._targets:
            stale = [k for k in target if k[0] == node_id]
            for key in stale:
                del target[key]
        self._meta.pop(node_id, None)

    # -- read path ---------------------------------------------------------

    def has_checkpoint(self, node_id: int) -> bool:
        return node_id in self._meta

    def latest(self, node_id: int) -> "NodeCheckpoint | None":
        """Reassemble the latest checkpoint of ``node_id`` (R1)."""
        meta = self._meta.get(node_id)
        if meta is None:
            return None
        return meta

    def chunks_for(self, node_id: int, se_key: tuple[str, int]):
        """Stream all chunks of one SE instance, across all targets."""
        found = []
        for target in self._targets:
            for (nid, key, _index), chunk in target.items():
                if nid == node_id and key == se_key:
                    found.append(chunk)
        return sorted(found, key=lambda c: c.index)

    def target_loads(self) -> list[int]:
        """Number of chunks per backup target (balance diagnostics)."""
        return [len(t) for t in self._targets]

    def total_chunks(self) -> int:
        return sum(self.target_loads())


class DiskBackupStore(BackupStore):
    """A backup store that writes chunks to ``m`` directory targets.

    Each target directory models one backup node's disk; chunks are
    pickled to individual files, and restore reads them back. Metadata
    (the checkpoint skeleton with TE bookkeeping) is replicated to every
    target for availability.
    """

    def __init__(self, root: str, m_targets: int = 2) -> None:
        super().__init__(m_targets)
        self.root = root
        self._dirs = [os.path.join(root, f"backup{i}")
                      for i in range(m_targets)]
        for directory in self._dirs:
            os.makedirs(directory, exist_ok=True)

    def save(self, checkpoint: "NodeCheckpoint") -> None:
        super().save(checkpoint)
        node_id = checkpoint.node_id
        for i, target in enumerate(self._targets):
            directory = self._dirs[i]
            for name in os.listdir(directory):
                if name.startswith(f"node{node_id}_"):
                    os.unlink(os.path.join(directory, name))
            for (nid, se_key, index), chunk in target.items():
                if nid != node_id:
                    continue
                filename = (
                    f"node{nid}_{se_key[0]}_{se_key[1]}_chunk{index}.pkl"
                )
                with open(os.path.join(directory, filename), "wb") as fh:
                    pickle.dump(chunk, fh)
            meta_path = os.path.join(directory, f"node{node_id}_meta.pkl")
            with open(meta_path, "wb") as fh:
                pickle.dump(checkpoint, fh)

    def reload_from_disk(self) -> None:
        """Rebuild the in-memory index from the target directories.

        Used to recover checkpoints across process restarts, or to
        verify that the on-disk representation is complete.
        """
        self._targets = [{} for _ in range(self.m_targets)]
        self._meta = {}
        for i, directory in enumerate(self._dirs):
            for name in sorted(os.listdir(directory)):
                path = os.path.join(directory, name)
                with open(path, "rb") as fh:
                    payload = pickle.load(fh)
                if name.endswith("_meta.pkl"):
                    node_id = int(name.split("_")[0][len("node"):])
                    self._meta[node_id] = payload
                else:
                    stem = name[:-len(".pkl")]
                    node_part, rest = stem.split("_", 1)
                    # se names may contain underscores; peel from the right.
                    se_name, se_index, chunk_part = rest.rsplit("_", 2)
                    node_id = int(node_part[len("node"):])
                    index = int(chunk_part[len("chunk"):])
                    self._targets[i][
                        (node_id, (se_name, int(se_index)), index)
                    ] = payload

"""Source-level annotations (§4.1).

The paper asks developers for a handful of annotations on an otherwise
ordinary imperative class; everything else is inferred statically:

* ``@Partitioned`` → :class:`Partitioned` field descriptor — the field
  can be split into disjoint partitions, always accessed through a key;
* ``@Partial``     → :class:`Partial` field descriptor — the field is
  replicated; each instance is updated independently;
* ``@Global``      → :func:`global_` expression marker — apply the
  expression to *all* instances of a partial field (a synchronisation
  point in the SDG);
* ``@Collection``  → :func:`collection` expression marker — expose all
  instances of a partial variable as a list for merging;
* entry points     → the :func:`entry` method decorator.

Everything here is executable as plain Python: an annotated program runs
sequentially, unchanged (``global_`` and ``collection`` degrade to
single-instance semantics). The translator gives the same class a
distributed interpretation.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.elements import StateKind
from repro.errors import TranslationError
from repro.state.base import StateElement


class StateField:
    """Base descriptor for annotated state fields.

    On instance access the descriptor lazily materialises one local SE
    object per program instance, which is what makes the annotated class
    runnable sequentially.
    """

    kind: StateKind

    def __init__(self, factory: Callable[[], StateElement],
                 key: str | None = None) -> None:
        if not callable(factory):
            raise TranslationError(
                f"state field factory must be callable, got {factory!r}"
            )
        self.factory = factory
        self.key = key
        self.name: str | None = None

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, instance: Any, owner: type | None = None):
        if instance is None:
            return self
        store = instance.__dict__
        if self.name not in store:
            element = self.factory()
            if not isinstance(element, StateElement):
                raise TranslationError(
                    f"state field {self.name!r} factory must produce a "
                    f"StateElement (got {type(element).__name__}); all "
                    f"program state must use explicit state classes (§4.1)"
                )
            store[self.name] = element
        return store[self.name]

    def __set__(self, instance: Any, value: Any) -> None:
        raise TranslationError(
            f"state field {self.name!r} cannot be reassigned; mutate it "
            f"through its state-element API"
        )


class Partitioned(StateField):
    """``@Partitioned``: disjoint partitions, accessed by ``key`` (§4.1).

    ``key`` names the method parameter/variable whose value selects the
    partition — e.g. ``Partitioned(Matrix, key="user")`` for the CF
    user-item matrix, where every access touches a single user's row.
    """

    kind = StateKind.PARTITIONED

    def __init__(self, factory: Callable[[], StateElement],
                 key: str = "key") -> None:
        super().__init__(factory, key=key)


class Partial(StateField):
    """``@Partial``: independent full replicas, merged on demand (§4.1)."""

    kind = StateKind.PARTIAL

    def __init__(self, factory: Callable[[], StateElement]) -> None:
        super().__init__(factory, key=None)


def entry(method: Callable) -> Callable:
    """Mark a method as a program entry point (one dataflow source each)."""
    method._sdg_entry = True  # type: ignore[attr-defined]
    return method


def global_(field: Any) -> Any:
    """``@Global`` access: apply the expression to all partial instances.

    In sequential execution this is the identity — there is exactly one
    instance. Under translation, the marked access becomes a one-to-all
    broadcast and the assigned variable becomes partial (multi-valued).
    """
    return field


def collection(value: Any) -> list:
    """``@Collection``: expose all instances of a partial variable.

    In sequential execution the single instance is wrapped in a
    one-element list, preserving merge semantics. Under translation the
    gathered instances arrive as the list.
    """
    return [value]

"""Hand-built SDGs violating the structural invariants (SDG2xx).

One zero-argument builder per diagnostic code, mirroring the shapes of
``tests/core/test_validation.py`` — the analyzer must report the same
violations as structured diagnostics instead of a raise.
"""

from repro.core import SDG, AccessMode, Dispatch, StateKind
from repro.state import KeyValueMap, Matrix


def noop(item, ctx=None):
    return item


def build_global_on_partitioned():
    """SDG201: global access requires partial state."""
    sdg = SDG("g201")
    sdg.add_state("s", KeyValueMap, kind=StateKind.PARTITIONED)
    sdg.add_task("t", noop, state="s", access=AccessMode.GLOBAL,
                 is_entry=True)
    return sdg


def build_partitioned_on_partial():
    """SDG202: partitioned access requires partitioned state."""
    sdg = SDG("g202")
    sdg.add_state("s", KeyValueMap, kind=StateKind.PARTIAL)
    sdg.add_task("t", noop, state="s", access=AccessMode.PARTITIONED,
                 is_entry=True)
    return sdg


def build_local_on_partitioned():
    """SDG203: local access on partitioned state (also SDG211)."""
    sdg = SDG("g203")
    sdg.add_state("s", KeyValueMap, kind=StateKind.PARTITIONED)
    sdg.add_task("t", noop, state="s", access=AccessMode.LOCAL,
                 is_entry=True)
    return sdg


def build_entry_without_key_fn():
    """SDG211: keyed entry access without an entry_key_fn."""
    sdg = SDG("g211")
    sdg.add_state("m", KeyValueMap, kind=StateKind.PARTITIONED)
    sdg.add_task("serve", noop, state="m",
                 access=AccessMode.PARTITIONED, is_entry=True)
    return sdg


def build_unkeyed_route():
    """SDG212: an unkeyed dataflow into a partitioned-access TE."""
    sdg = SDG("g212")
    sdg.add_state("m", KeyValueMap, kind=StateKind.PARTITIONED)
    sdg.add_task("src", noop, is_entry=True)
    sdg.add_task("sink", noop, state="m", access=AccessMode.PARTITIONED)
    sdg.connect("src", "sink", Dispatch.ONE_TO_ANY)
    return sdg


def build_conflicting_keys():
    """SDG213: two routes partition the same SE by different keys."""
    sdg = SDG("g213")
    sdg.add_state("m", Matrix, kind=StateKind.PARTITIONED)
    sdg.add_task("src", noop, is_entry=True)
    sdg.add_task("by_row", noop, state="m", access=AccessMode.PARTITIONED)
    sdg.add_task("by_col", noop, state="m", access=AccessMode.PARTITIONED)
    sdg.connect("src", "by_row", Dispatch.KEY_PARTITIONED,
                key_fn=lambda x: x[0], key_name="row")
    sdg.connect("src", "by_col", Dispatch.KEY_PARTITIONED,
                key_fn=lambda x: x[1], key_name="col")
    return sdg


def build_gather_not_at_merge():
    """SDG221: an all-to-one edge must end at a merge TE."""
    sdg = SDG("g221")
    sdg.add_task("a", noop, is_entry=True)
    sdg.add_task("b", noop)
    sdg.connect("a", "b", Dispatch.ALL_TO_ONE)
    return sdg


def build_merge_without_gather():
    """SDG222: a merge TE fed by a non-gather edge."""
    sdg = SDG("g222")
    sdg.add_task("a", noop, is_entry=True)
    sdg.add_task("m", noop, is_merge=True)
    sdg.connect("a", "m", Dispatch.ONE_TO_ANY)
    return sdg


def build_no_entry():
    """SDG231: an SDG with no entry TE."""
    sdg = SDG("g231")
    sdg.add_task("t", noop)
    return sdg


def build_unreachable_te():
    """SDG232: a TE no entry can reach."""
    sdg = SDG("g232")
    sdg.add_task("a", noop, is_entry=True)
    sdg.add_task("orphan", noop)
    return sdg


def build_checkpoint_bypass_graph():
    """SDG303 on a hand-built SDG: a TE writing ctx.state internals."""
    def leak(item, ctx=None):
        ctx.state._data[item] = True
        return item

    sdg = SDG("g303")
    sdg.add_state("s", KeyValueMap, kind=StateKind.PARTIAL)
    sdg.add_task("t", leak, state="s", access=AccessMode.LOCAL,
                 is_entry=True)
    return sdg


BROKEN_BUILDERS = {
    "SDG201": build_global_on_partitioned,
    "SDG202": build_partitioned_on_partial,
    "SDG203": build_local_on_partitioned,
    "SDG211": build_entry_without_key_fn,
    "SDG212": build_unkeyed_route,
    "SDG213": build_conflicting_keys,
    "SDG221": build_gather_not_at_merge,
    "SDG222": build_merge_without_gather,
    "SDG231": build_no_entry,
    "SDG232": build_unreachable_te,
    "SDG303": build_checkpoint_bypass_graph,
}

"""``repro top``: a terminal dashboard over the live telemetry plane.

The four observability pillars (metrics, traces, profile, flight
recorder) all end in data structures; this module renders them into a
single text frame, the way ``top`` renders ``/proc``. Two modes:

* **one-shot** (``--once``, the default): run the workload to idle and
  print one frame — the post-run summary.
* **watch** (``--watch``): inject the workload, then render frames
  *while it drains*, driving :meth:`Runtime.poll_telemetry` between
  frames so the numbers move. On the multiprocess substrate the poll
  pumps the coordinator wire (absorbing piggybacked worker shards);
  in-process it single-steps the engine for the frame interval.

Everything here reads through substrate-agnostic surfaces
(:meth:`merged_metrics`, :meth:`merged_profile`, ``runtime.flight``,
:meth:`blocked_channels`), so the same dashboard works unchanged on
both substrates — which is itself a differential check on the
cross-substrate telemetry plumbing.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.runtime.engine import Runtime, RuntimeConfig

__all__ = ["build_workload", "render_dashboard", "run_top"]

#: Flight-recorder capacity for dashboard runs: enough tail to be
#: useful, small enough to render.
_FLIGHT_CAPACITY = 64

#: Flight lines shown per frame.
_FLIGHT_TAIL = 8


def build_workload(app: str, items: int):
    """The shared demo workloads: ``(sdg, se_name, entry, payloads)``.

    Same corpora as ``repro run`` so dashboard numbers line up with
    plain-run output for the same ``--app --items``.
    """
    if app == "kvstore":
        from repro.testing import build_kv_sdg

        sdg = build_kv_sdg()
        payloads = [("put", f"k{i % 16}", i) for i in range(items)]
        return sdg, "table", "serve", payloads
    if app == "wordcount":
        from repro.apps.wordcount import build_wordcount_sdg

        sdg = build_wordcount_sdg()
        words = ("state", "dataflow", "explicit", "imperative",
                 "big", "data", "processing")
        payloads = [
            (i, " ".join(words[(i + j) % len(words)] for j in range(4)))
            for i in range(items)
        ]
        return sdg, "counts", "split", payloads
    raise ValueError(f"unknown app {app!r} (kvstore, wordcount)")


# -- frame rendering -----------------------------------------------------

def _samples(metrics, name: str) -> list[tuple[dict, float]]:
    """``(labels, value)`` pairs of one metric family, or []."""
    for metric in metrics.collect():
        if metric.name == name:
            return [(labels, child.value)
                    for labels, child in metric.samples()]
    return []


def _by_label(metrics, name: str, label: str) -> dict[str, float]:
    """Sum a family's samples grouped by one label's values."""
    grouped: dict[str, float] = {}
    for labels, value in _samples(metrics, name):
        key = labels.get(label, "")
        grouped[key] = grouped.get(key, 0.0) + value
    return grouped


def render_dashboard(runtime: Runtime,
                     flight_limit: int = _FLIGHT_TAIL) -> str:
    """One dashboard frame over a deployed runtime's telemetry."""
    metrics = runtime.merged_metrics()
    substrate = getattr(runtime.substrate, "name", "?")
    head = f"substrate={substrate}"
    workers = getattr(runtime.substrate, "workers", None)
    if substrate == "multiprocess" and workers:
        head += f" workers={workers}"
    lines = [f"repro top — {head} steps={runtime.total_steps}"]

    processed = metrics.total("engine_items_processed_total")
    lines.append(f"items processed: {int(processed)}")
    hot = sorted(_samples(metrics, "engine_items_processed_total"),
                 key=lambda pair: -pair[1])[:5]
    for labels, value in hot:
        where = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        lines.append(f"  {where or '(unlabelled)':<32} {int(value):>8}")

    sent = _by_label(metrics, "wire_frames_total", "direction")
    if sent:  # wire series only exist on the multiprocess substrate
        sent_bytes = _by_label(metrics, "wire_bytes_total", "direction")
        lines.append(
            f"wire: frames send={int(sent.get('send', 0))} "
            f"recv={int(sent.get('recv', 0))}  "
            f"bytes send={int(sent_bytes.get('send', 0))} "
            f"recv={int(sent_bytes.get('recv', 0))}  "
            f"serialize="
            f"{metrics.total('wire_serialize_seconds_total'):.4f}s"
        )
        outbox = _by_label(metrics, "wire_outbox_depth", "worker")
        if outbox:
            depths = " ".join(f"w{wid}={int(depth)}" for wid, depth
                              in sorted(outbox.items()))
            lines.append(f"coordinator outbox depth: {depths}")

    blocked = runtime.blocked_channels()
    lines.append(f"blocked channels: {len(blocked)}")

    profile = runtime.merged_profile()
    if profile is not None and profile.names():
        lines.append("profile (wall-clock phases):")
        for row in profile.render().splitlines():
            lines.append(f"  {row}")

    flight = runtime.flight
    if flight is not None and len(flight):
        lines.append(f"flight recorder (last {flight_limit}):")
        for row in flight.render(limit=flight_limit).splitlines():
            lines.append(f"  {row}")
    return "\n".join(lines)


# -- the driver ----------------------------------------------------------

def _advance(runtime: Runtime, interval: float) -> None:
    """Let the workload make progress for ~``interval`` seconds.

    Multiprocess: one telemetry pump — workers drain autonomously, the
    coordinator only needs to route and absorb shards. In-process:
    single-step the engine until the interval elapses (or idle).
    """
    if getattr(runtime.substrate, "poll", None) is not None:
        runtime.poll_telemetry(interval)
        return
    deadline = time.perf_counter() + interval
    while time.perf_counter() < deadline and runtime.step():
        pass


def run_top(app: str = "kvstore", items: int = 200,
            substrate: str = "inprocess", workers: int | None = None,
            watch: bool = False, frames: int = 5,
            interval: float = 0.2,
            out: Callable[[str], None] = print) -> int:
    """Run a demo workload and render the dashboard over it."""
    sdg, se_name, entry, payloads = build_workload(app, items)
    config = RuntimeConfig(
        se_instances={se_name: 2},
        substrate=substrate,
        workers=workers,
        profile=True,
        flight_recorder=_FLIGHT_CAPACITY,
    )
    runtime = Runtime(sdg, config).deploy()
    try:
        for payload in payloads:
            runtime.inject(entry, payload)
        if watch:
            for frame in range(max(1, frames)):
                _advance(runtime, interval)
                out(render_dashboard(runtime))
                out("")
        runtime.run_until_idle()
        out(render_dashboard(runtime))
    finally:
        runtime.close()
    return 0

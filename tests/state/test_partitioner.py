"""Unit tests for partitioning strategies and chunked serialisation."""

import pytest

from repro.errors import StateError
from repro.state import (
    HashPartitioner,
    KeyValueMap,
    Matrix,
    RangePartitioner,
    Vector,
)
from repro.state.base import stable_hash


class TestStableHash:
    def test_int_identity(self):
        assert stable_hash(7) == 7

    def test_negative_int_is_distinct_and_non_negative(self):
        assert stable_hash(-3) >= 0
        assert stable_hash(-3) != stable_hash(3)

    def test_bool_does_not_collide_with_large_int(self):
        assert stable_hash(True) == 1

    def test_string_is_deterministic(self):
        assert stable_hash("user42") == stable_hash("user42")

    def test_tuple_hashing(self):
        assert stable_hash((1, 2)) == stable_hash((1, 2))
        assert stable_hash((1, 2)) != stable_hash((2, 1))


class TestHashPartitioner:
    def test_range_of_outputs(self):
        p = HashPartitioner(4)
        for key in range(100):
            assert 0 <= p.partition(key) < 4

    def test_deterministic(self):
        p = HashPartitioner(8)
        assert p.partition("key") == p.partition("key")

    def test_rescaled(self):
        p = HashPartitioner(2).rescaled(5)
        assert p.n_partitions == 5

    def test_zero_partitions_rejected(self):
        with pytest.raises(StateError):
            HashPartitioner(0)

    def test_equality(self):
        assert HashPartitioner(3) == HashPartitioner(3)
        assert HashPartitioner(3) != HashPartitioner(4)


class TestRangePartitioner:
    def test_boundaries_split_the_keyspace(self):
        p = RangePartitioner([10, 20])
        assert p.partition(5) == 0
        assert p.partition(10) == 1
        assert p.partition(19) == 1
        assert p.partition(20) == 2

    def test_partition_count(self):
        assert RangePartitioner([1, 2, 3]).n_partitions == 4

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(StateError):
            RangePartitioner([5, 1])

    def test_rescale_is_explicitly_unsupported(self):
        with pytest.raises(StateError):
            RangePartitioner([5]).rescaled(3)


class TestStatePartitioning:
    def test_map_partitions_are_disjoint_and_complete(self):
        kv = KeyValueMap()
        for i in range(50):
            kv.put(f"key{i}", i)
        p = HashPartitioner(3)
        parts = [kv.extract_partition(p, i) for i in range(3)]
        all_keys = [k for part in parts for k in part.keys()]
        assert sorted(all_keys) == sorted(kv.keys())
        assert len(all_keys) == len(set(all_keys))

    def test_matrix_row_partitioning_groups_rows(self):
        m = Matrix(partition_axis="row")
        for row in range(6):
            m.set_element(row, 0, float(row))
        p = HashPartitioner(2)
        parts = [m.extract_partition(p, i) for i in range(2)]
        for i, part in enumerate(parts):
            for (row, _col), _val in part._store_items():
                assert p.partition(row) == i

    def test_matrix_col_partitioning_groups_cols(self):
        m = Matrix(partition_axis="col")
        for col in range(6):
            m.set_element(0, col, float(col))
        p = HashPartitioner(3)
        parts = [m.extract_partition(p, i) for i in range(3)]
        for i, part in enumerate(parts):
            for (_row, col), _val in part._store_items():
                assert p.partition(col) == i

    def test_merge_partitions_restores_original(self):
        kv = KeyValueMap()
        for i in range(30):
            kv.put(i, i * i)
        p = HashPartitioner(4)
        parts = [kv.extract_partition(p, i) for i in range(4)]
        merged = KeyValueMap.merge_partitions(parts)
        assert sorted(merged.items()) == sorted(kv.items())

    def test_merge_empty_list_rejected(self):
        with pytest.raises(StateError):
            KeyValueMap.merge_partitions([])

    def test_merge_overlapping_partitions_rejected(self):
        """Partitions must be disjoint — a shared key means the
        partitioner was inconsistent, and silently keeping either value
        would corrupt state."""
        a = KeyValueMap()
        a.put("shared", 1)
        a.put("only-a", 2)
        b = KeyValueMap()
        b.put("shared", 3)
        with pytest.raises(StateError, match="disjoint"):
            KeyValueMap.merge_partitions([a, b])

    def test_repartition_during_checkpoint_rejected(self):
        kv = KeyValueMap()
        kv.begin_checkpoint()
        with pytest.raises(StateError):
            kv.extract_partition(HashPartitioner(2), 0)
        kv.consolidate()


class TestChunking:
    def test_chunks_cover_all_items(self):
        kv = KeyValueMap()
        for i in range(100):
            kv.put(i, str(i))
        chunks = kv.to_chunks(5)
        assert len(chunks) == 5
        total = sum(len(c.items) for c in chunks)
        assert total == 100

    def test_from_chunks_roundtrip(self):
        kv = KeyValueMap()
        for i in range(40):
            kv.put(f"k{i}", i)
        restored = KeyValueMap.from_chunks(kv, kv.to_chunks(3))
        assert sorted(restored.items()) == sorted(kv.items())

    def test_vector_chunk_meta_preserves_trailing_zeros(self):
        v = Vector(size=10)
        v.set(0, 1.0)
        restored = Vector.from_chunks(v, v.to_chunks(2))
        assert restored.size() == 10

    def test_zero_chunks_rejected(self):
        with pytest.raises(StateError):
            KeyValueMap().to_chunks(0)

    def test_chunk_size_model(self):
        kv = KeyValueMap()
        for i in range(10):
            kv.put(i, i)
        chunk = kv.to_chunks(1)[0]
        assert chunk.size_bytes(bytes_per_entry=64) == 640

    def test_chunks_are_taken_from_consistent_snapshot(self):
        kv = KeyValueMap()
        kv.put("a", 1)
        kv.begin_checkpoint()
        kv.put("b", 2)
        chunks = kv.to_chunks(2)
        keys = {k for c in chunks for k, _ in c.items}
        assert keys == {"a"}
        kv.consolidate()

"""Periodic asynchronous checkpoint scheduling.

The paper checkpoints every node every 10 seconds of wall-clock time
(§6). The in-process runtime advances in *logical* time (processed
items), so the scheduler triggers a node's checkpoint every
``every_items`` items that node processes — and, to exercise the
asynchronous protocol rather than degrade to a synchronous one, it
holds the checkpoint open for ``complete_after_steps`` further engine
steps before consolidating, during which the node keeps processing
against its dirty overlays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.recovery.checkpoint import CheckpointManager, PendingCheckpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Runtime


class CheckpointScheduler:
    """Drives :class:`CheckpointManager` from the engine's step hook."""

    def __init__(self, manager: CheckpointManager,
                 every_items: int = 1_000,
                 complete_after_steps: int = 50) -> None:
        if every_items < 1 or complete_after_steps < 0:
            raise ValueError("scheduler intervals must be positive")
        self.manager = manager
        self.every_items = every_items
        self.complete_after_steps = complete_after_steps
        self.completed_count = 0
        self._last_checkpointed: dict[int, int] = {}
        self._pending: dict[int, tuple[PendingCheckpoint, int]] = {}
        self._seen_epochs: dict[str, int] = {}
        self._installed = False

    def install(self) -> "CheckpointScheduler":
        """Attach to the runtime; returns self."""
        if not self._installed:
            self.manager.runtime.add_step_hook(self._on_step)
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.manager.runtime.remove_step_hook(self._on_step)
            self._installed = False

    # ------------------------------------------------------------------

    def _on_step(self, runtime: "Runtime") -> None:
        # A repartition invalidates existing checkpoints of the SE
        # (recovery refuses stale epochs): force fresh checkpoints of
        # every node hosting it as soon as possible.
        refresh_ses = set()
        for se_name in runtime.sdg.states:
            epoch = runtime.se_epoch(se_name)
            if self._seen_epochs.get(se_name, 0) != epoch:
                self._seen_epochs[se_name] = epoch
                refresh_ses.add(se_name)
        if refresh_ses:
            for node in runtime.alive_nodes():
                if any(se_name in refresh_ses
                       for se_name, _i in node.se_instances):
                    self._last_checkpointed[node.node_id] = (
                        node.items_processed - self.every_items
                    )
        for node in runtime.alive_nodes():
            node_id = node.node_id
            pending = self._pending.get(node_id)
            if pending is not None:
                checkpoint, begun_at = pending
                if runtime.total_steps - begun_at >= (
                    self.complete_after_steps
                ):
                    del self._pending[node_id]
                    if self.manager.complete(checkpoint) is not None:
                        self.completed_count += 1
                continue
            if not node.se_instances:
                continue  # stateless nodes recover from replay alone
            processed = node.items_processed
            last = self._last_checkpointed.get(node_id, 0)
            if processed - last >= self.every_items:
                self._last_checkpointed[node_id] = processed
                self._pending[node_id] = (
                    self.manager.begin(node_id), runtime.total_steps
                )

    def flush(self) -> None:
        """Complete any checkpoints still open (e.g. at quiescence)."""
        for node_id, (checkpoint, _begun) in list(self._pending.items()):
            del self._pending[node_id]
            if self.manager.complete(checkpoint) is not None:
                self.completed_count += 1

"""SDG301 taint laundered through a param-mutating helper.

``seen`` is replica-derived (partial RMW); the entry never assigns it
to anything that escapes — instead ``_stash`` smuggles it into
``out`` by mutating its first parameter. The helper's summary proves
``mutated_params = {0}``, so the taint flows into ``out``, which is
live out of the block and ships on the dataflow edge.
"""

from repro.annotations import Partial, Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class HelperRace(SDGProgram):
    """Persists a per-replica counter via a helper's side effect."""

    counters = Partial(KeyValueMap)
    table = Partitioned(KeyValueMap, key="key")

    @entry
    def record(self, key, amount):
        seen = self.counters.increment(key, amount)
        out = []
        self._stash(out, seen)
        self.table.put(key, out)

    def _stash(self, bucket, value):
        bucket.append(value)

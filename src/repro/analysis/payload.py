"""Pass 5 — dead-payload detection (``SDG305``).

Every dataflow edge ships the variables that are live into its
destination TE (Fig. 3 step 5); every extra variable inflates the
envelope on the hottest path of the system — per-item serialisation
and queueing — for nothing.

Two sources of dead payload:

* **entry arguments**: the entry TE always receives the caller's full
  argument tuple. A parameter that no task element ever reads (and
  that is not the declared entry partition key, which the dispatcher
  extracts for routing) rides every injected envelope and is dropped
  unopened;
* **inter-TE edges**: a variable live into block *i* must be read by
  block *i* or a later one before redefinition. The liveness analysis
  makes these edges minimal by construction, so a finding here means
  the analysis and the code generator disagree — the pass double-checks
  the invariant and would catch a liveness regression.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticSink
from repro.analysis.model import ProgramModel
from repro.core.elements import AccessMode
from repro.translate.liveness import block_uses_defs


def run(model: ProgramModel, sink: DiagnosticSink) -> None:
    for ir in model.entries.values():
        per_block = [block_uses_defs(b.statements) for b in ir.blocks]
        all_uses = set()
        for uses, _defs in per_block:
            all_uses |= uses
        entry_keys = set()
        head = ir.blocks[0]
        if (
            head.access is not None
            and head.access.mode is AccessMode.PARTITIONED
            and head.access.key
        ):
            entry_keys.add(head.access.key)

        for param in ir.params:
            if param in all_uses or param in entry_keys:
                continue
            sink.emit(
                "SDG305",
                f"method {ir.method!r}: parameter {param!r} is shipped "
                f"on every injected envelope but never read by any "
                f"task element",
                lineno=ir.fn_ast.lineno, origin=ir.method,
                hint=f"drop {param!r} from the entry signature (or use "
                     f"it); smaller envelopes mean less serialisation "
                     f"and queueing on the hot path",
            )

        # Inter-TE edges: anything shipped must be read downstream.
        for index in range(1, len(ir.blocks)):
            downstream_uses = set()
            redefined = set()
            for later in range(index, len(ir.blocks)):
                uses, defs = per_block[later]
                downstream_uses |= uses - redefined
                redefined |= defs
            for name in ir.lives[index]:
                if name in downstream_uses:
                    continue
                stmt = ir.blocks[index].statements[0]
                sink.emit(
                    "SDG305",
                    f"method {ir.method!r}: variable {name!r} travels "
                    f"on the edge into {ir.te_names[index]!r} but no "
                    f"downstream task element reads it",
                    lineno=stmt.lineno, origin=ir.method,
                    hint="this indicates a live-variable analysis "
                         "regression — the edge payload should be "
                         "minimal by construction",
                )

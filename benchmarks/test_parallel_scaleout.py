"""Fig. 7 (parallel) — KV scale-out on the multiprocess substrate.

The paper's Fig. 7 scales a partitioned KV store across VMs; the
in-repo analogue so far scaled *logical* partitions inside one Python
process — more instances, same CPU. The multiprocess substrate makes
the claim physical: worker processes each own a slice of the
partitioned SE and serve requests concurrently.

The workload is deliberately **latency-bound** (a fixed per-item
service delay inside the task), mirroring the paper's request-serving
setup where per-request work dominates: speedup then comes from
workers overlapping service time, which holds even on the single-CPU
containers this suite runs in. The measured series — including an
in-process baseline and the cross-substrate state fingerprint — is
written to ``BENCH_parallel.json`` so CI can archive the trend.
"""

import json
import os
import time

from conftest import print_figure

from repro.core import SDG
from repro.core.elements import AccessMode, StateKind
from repro.durability.manifest import state_fingerprint
from repro.runtime import Runtime, RuntimeConfig
from repro.state import KeyValueMap

ITEMS = 400
SERVICE_DELAY_S = 0.002
PARTITIONS = 4
WORKER_COUNTS = (1, 2, 4)
RESULT_FILE = os.path.join(os.path.dirname(__file__),
                           "BENCH_parallel.json")


def build_slow_kv(delay: float) -> SDG:
    """A partitioned KV whose serve path has fixed service latency."""
    sdg = SDG("slowkv")
    sdg.add_state("table", KeyValueMap, kind=StateKind.PARTITIONED,
                  partition_by="key")

    def serve(ctx, request):
        op, key, value = request
        time.sleep(delay)
        if op == "put":
            ctx.state.put(key, value)
            return None
        return (key, ctx.state.get(key))

    sdg.add_task("serve", serve, state="table",
                 access=AccessMode.PARTITIONED, is_entry=True,
                 entry_key_fn=lambda r: r[1], entry_key_name="key")
    return sdg


def timed_run(substrate: str, workers=None):
    config = RuntimeConfig(se_instances={"table": PARTITIONS},
                           substrate=substrate, workers=workers)
    runtime = Runtime(build_slow_kv(SERVICE_DELAY_S), config).deploy()
    try:
        start = time.perf_counter()
        for i in range(ITEMS):
            runtime.inject("serve", ("put", f"k{i}", i))
        processed = runtime.run_until_idle()
        wall = time.perf_counter() - start
        fingerprint = state_fingerprint(runtime)
    finally:
        runtime.close()
    assert processed == ITEMS
    return wall, fingerprint


def compute_figure():
    rows = []
    wall_inproc, fp_inproc = timed_run("inprocess")
    rows.append(("inprocess", "-", wall_inproc, ITEMS / wall_inproc,
                 1.0, fp_inproc))
    wall_base = None
    for workers in WORKER_COUNTS:
        wall, fingerprint = timed_run("multiprocess", workers=workers)
        # Every run must converge to the same merged state as the
        # deterministic in-process baseline.
        assert fingerprint == fp_inproc
        if wall_base is None:
            wall_base = wall
        rows.append(("multiprocess", workers, wall, ITEMS / wall,
                     wall_base / wall, fingerprint))
    return rows


def test_fig7_parallel_kv_scaleout(benchmark):
    rows = benchmark.pedantic(compute_figure, rounds=1, iterations=1)
    print_figure(
        "Fig. 7 (parallel): latency-bound KV on the multiprocess "
        "substrate",
        ["substrate", "workers", "wall (s)", "items/s",
         "speedup vs 1w", "state hash"],
        rows,
    )
    by_workers = {row[1]: row for row in rows if row[0] == "multiprocess"}
    # The acceptance bar: 4 workers overlap service latency for at
    # least a 1.5x wall-clock win over 1 worker (measured 3.5-4x).
    speedup_4 = by_workers[4][4]
    assert speedup_4 >= 1.5, (
        f"4-worker speedup {speedup_4:.2f}x below the 1.5x bar"
    )
    # Scaling is monotone across the sweep.
    walls = [by_workers[w][2] for w in WORKER_COUNTS]
    assert walls == sorted(walls, reverse=True)
    payload = {
        "items": ITEMS,
        "service_delay_s": SERVICE_DELAY_S,
        "partitions": PARTITIONS,
        "series": [
            {
                "substrate": row[0],
                "workers": None if row[1] == "-" else row[1],
                "wall_s": round(row[2], 4),
                "throughput_items_s": round(row[3], 1),
                "speedup_vs_1_worker": round(row[4], 2),
                "state_hash": row[5],
            }
            for row in rows
        ],
    }
    with open(RESULT_FILE, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def test_parallel_smoke_two_workers(benchmark):
    """The CI smoke rung: 2 workers must beat nothing — just agree.

    Fast cross-substrate differential on the real (non-slowed) KV app:
    the merged multiprocess state matches the deterministic in-process
    run bit-for-bit under ``state_fingerprint``.
    """
    from repro.testing import build_kv_sdg

    def run(substrate, workers=None):
        config = RuntimeConfig(se_instances={"table": PARTITIONS},
                               substrate=substrate, workers=workers)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        try:
            for i in range(200):
                runtime.inject("serve", ("put", f"k{i % 23}", i))
            runtime.run_until_idle()
            fingerprint = state_fingerprint(runtime)
        finally:
            runtime.close()
        return fingerprint

    def compare():
        return run("inprocess"), run("multiprocess", workers=2)

    inproc, multi = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert inproc == multi

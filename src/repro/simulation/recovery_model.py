"""Recovery-time and deployment-cost models (Fig. 11, §3.4).

The m-to-n restore of Fig. 4 parallelises two distinct phases:

* **reading** checkpoint chunks from ``m`` backup disks — disk-bound,
  scales with ``m``;
* **reconstructing** state on ``n`` recovering nodes (deserialisation
  and re-insertion) — CPU-bound, scales with ``n``.

Streaming overlaps transfer with both, so the recovery time is governed
by the slowest parallel phase, plus the replay of un-checkpointed items
from upstream output buffers. The paper's observation falls out of the
model: with large state, reconstruction dominates, so adding backup
disks (m) stops helping while adding recovering nodes (n) still does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class RecoveryParams:
    """Cluster characteristics for the recovery-time model."""

    disk_read_bw: float = 300e6      # bytes/s per backup disk
    network_bw: float = 1.25e9       # bytes/s per node NIC (10 GbE)
    #: Rate at which one node reconstitutes state from chunks
    #: (deserialise + rebuild indexes) — slower than the disks, which is
    #: why reconstruction parallelism (n) matters more than read
    #: parallelism (m), the paper's Fig. 11 observation.
    reconstruct_rate: float = 150e6
    #: Items replayed from upstream buffers after the state is restored.
    replay_items: float = 50_000.0
    replay_rate: float = 60_000.0    # items/s during catch-up
    detection_s: float = 1.0         # failure detection + re-instantiation


def recovery_time(
    state_bytes: float,
    m_backups: int,
    n_recovering: int,
    params: RecoveryParams = RecoveryParams(),
    delta_bytes: float = 0.0,
) -> float:
    """Seconds to restore ``state_bytes`` with an m-to-n strategy.

    Each phase is internally parallel (reads over ``m`` disks,
    transfer/reconstruction/replay over ``n`` nodes) but the phases
    overlap only partially in the implementation — chunks must be read
    before they can be rebuilt into indexes — so their times add. This
    reproduces the published ordering 2-to-2 < 1-to-2 < 2-to-1 < 1-to-1
    with reconstruction the dominant term at large state.

    ``delta_bytes`` is the total size of the incremental chain folded
    on top of the full base: delta chunks are read, transferred and
    re-applied just like base chunks, so they add to all three
    state-proportional phases — the restore-side price of cheap
    incremental backups.
    """
    if state_bytes < 0 or delta_bytes < 0:
        raise SimulationError("state and delta sizes cannot be negative")
    if m_backups < 1 or n_recovering < 1:
        raise SimulationError("m and n must both be >= 1")
    restored_bytes = state_bytes + delta_bytes
    read_time = restored_bytes / (m_backups * params.disk_read_bw)
    transfer_time = restored_bytes / (n_recovering * params.network_bw)
    reconstruct_time = restored_bytes / (
        n_recovering * params.reconstruct_rate
    )
    replay_time = params.replay_items / (
        n_recovering * params.replay_rate
    )
    return (params.detection_s + read_time + transfer_time
            + reconstruct_time + replay_time)


def deployment_time(
    n_instances: int,
    per_instance_s: float = 0.12,
    base_s: float = 1.0,
) -> float:
    """Start-up cost of materialising an SDG (§3.4).

    The paper reports deploying 50 TE/SE instances on 50 nodes in ~7 s;
    the default constants reproduce that point.
    """
    if n_instances < 0:
        raise SimulationError("instance count cannot be negative")
    return base_s + per_instance_s * n_instances

"""Tests for the logistic-regression application (§6.2)."""

import random

import pytest

from repro.apps import LogisticRegression
from repro.apps.logistic_regression import sigmoid


def make_dataset(n=200, seed=7):
    """Linearly separable 2-feature data with a bias column."""
    rng = random.Random(seed)
    data = []
    for _ in range(n):
        x1 = rng.uniform(-2, 2)
        x2 = rng.uniform(-2, 2)
        label = 1 if x1 + 0.5 * x2 > 0 else 0
        data.append(([1.0, x1, x2], label))
    return data


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(0.0) == pytest.approx(0.5)

    def test_saturation(self):
        assert sigmoid(50) == pytest.approx(1.0)
        assert sigmoid(-50) == pytest.approx(0.0, abs=1e-9)

    def test_no_overflow_for_large_negative(self):
        assert sigmoid(-1000) == 0.0


class TestSequentialTraining:
    def test_learns_separable_data(self):
        program = LogisticRegression()
        data = make_dataset()
        for _ in range(5):
            for features, label in data:
                program.train(features, label, 0.5)
        model = program.get_model()
        correct = sum(
            1 for features, label in data
            if (program.predict_with(model, features) > 0.5) == bool(label)
        )
        assert correct / len(data) > 0.95


class TestDistributedTraining:
    def test_structure(self):
        result = LogisticRegression.translate()
        info = result.entry_info("get_model")
        assert len(info.te_names) == 2  # global read + merge
        assert result.sdg.task(info.te_names[1]).is_merge

    def test_single_replica_matches_sequential(self):
        data = make_dataset(n=60)
        seq = LogisticRegression()
        app = LogisticRegression.launch(weights=1)
        for features, label in data:
            seq.train(features, label, 0.5)
            app.train(features, label, 0.5)
        app.run()
        app.get_model()
        app.run()
        assert app.results("get_model")[0] == pytest.approx(
            seq.get_model()
        )

    @pytest.mark.parametrize("replicas", [2, 4])
    def test_parameter_averaging_still_learns(self, replicas):
        data = make_dataset(n=300)
        app = LogisticRegression.launch(weights=replicas)
        for _ in range(4):
            for features, label in data:
                app.train(features, label, 0.5)
            app.run()
        app.get_model()
        app.run()
        model = app.results("get_model")[0]
        program = LogisticRegression()  # for predict_with only
        correct = sum(
            1 for features, label in data
            if (program.predict_with(model, features) > 0.5) == bool(label)
        )
        assert correct / len(data) > 0.9

    def test_replicas_diverge_then_average(self):
        app = LogisticRegression.launch(weights=2)
        data = make_dataset(n=40)
        for features, label in data:
            app.train(features, label, 0.5)
        app.run()
        replicas = [element.to_list()
                    for element in app.state_of("weights")]
        assert replicas[0] != replicas[1]  # independent local updates
        app.get_model()
        app.run()
        model = app.results("get_model")[0]
        for i, value in enumerate(model):
            expected = (replicas[0][i] if i < len(replicas[0]) else 0.0)
            expected += (replicas[1][i] if i < len(replicas[1]) else 0.0)
            assert value == pytest.approx(expected / 2)

"""The transport layer: channels, delivery, and backpressure.

Envelopes travel point-to-point channels between TE instances (§4.2).
The :class:`Transport` owns those channels: it stamps nothing and
routes nothing — the dispatcher decides *where* an item goes — but it
performs the actual hand-off into the destination inbox, tracks
per-channel delivery statistics, applies payload isolation
(``copy_payloads``), and reports **backpressure** when a bounded
channel's destination inbox grows past ``channel_capacity``.

Backpressure here is a *signal*, not flow control: the in-process
engine never blocks a producer (dropping or stalling items would break
the replay-based recovery contract, which assumes reliable channels).
Instead, :meth:`Transport.blocked_channels` names the congested
channels and the bottleneck detector consumes that as a second scaling
signal alongside raw inbox depth — the same reaction the paper's
runtime takes when a TE limits throughput (§3.3).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import NULL_REGISTRY
from repro.runtime.envelope import (
    INPUT_EDGE,
    NO_RESPONSE,
    Batch,
    ChannelId,
    Envelope,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Tracer
    from repro.runtime.deployment import Topology
    from repro.runtime.instances import TEInstance


@dataclass
class Channel:
    """One materialised point-to-point stream, with delivery stats."""

    channel_id: ChannelId
    #: Envelopes appended to the destination inbox.
    delivered: int = 0
    #: Envelopes refused because the destination instance was dead or
    #: missing (they survive in the producer-side replay buffer).
    refused: int = 0


class Transport:
    """Delivers envelopes into destination inboxes.

    ``capacity`` bounds every channel's destination inbox for
    backpressure *reporting* (None = unbounded, the default);
    ``copy_payloads`` deep-copies payloads at send/inject time for
    wire-faithful isolation (§4.1 location independence).
    """

    def __init__(self, topology: "Topology", *,
                 capacity: int | None = None,
                 copy_payloads: bool = False,
                 payload_isolated: bool = False,
                 metrics: Any = None,
                 tracer: "Tracer | None" = None,
                 clock=None) -> None:
        self._topology = topology
        self.capacity = capacity
        self.copy_payloads = copy_payloads
        #: Substrate capability flag: when the execution substrate
        #: already serialises every hand-off (process boundary), the
        #: defensive ``copy_payloads`` deepcopy is redundant — the wire
        #: codec *is* the isolation — and is skipped on the hot path.
        self.payload_isolated = payload_isolated
        self._channels: dict[ChannelId, Channel] = {}
        #: Worker-side wire routing (multiprocess substrate): when set,
        #: envelopes whose destination instance is owned by another
        #: worker are forwarded over the wire instead of delivered into
        #: a local inbox. ``None`` on the in-process substrate and on
        #: the coordinator.
        self._placement = None
        self._local_worker: int | None = None
        self._remote_send = None
        #: Optional causal tracer; notified on every successful delivery
        #: so queue-wait spans are observable. ``clock`` supplies the
        #: current logical step (the engine passes its own counter).
        self.tracer = tracer
        self._clock = clock if clock is not None else (lambda: 0)
        #: Capability-driven coalescing (``RuntimeConfig(optimize=True)``
        #: on a program certified ``COALESCIBLE_DISPATCH``): dataflow
        #: edge indexes and entry TEs whose consecutive same-channel
        #: envelopes are merged into :class:`Batch` deliveries. ``None``
        #: keeps the exact per-envelope path.
        self._coalesce_edges: frozenset | None = None
        self._coalesce_entries: frozenset = frozenset()
        self._coalesce_max = 64
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._c_delivered = registry.counter(
            "transport_delivered_total",
            "envelopes appended to a destination inbox").labels()
        self._c_refused = registry.counter(
            "transport_refused_total",
            "envelopes refused because the destination was dead").labels()
        self._c_copies = registry.counter(
            "transport_payload_copies_total",
            "payload deep-copies performed for isolation").labels()
        self._c_wire = registry.counter(
            "transport_wire_forwards_total",
            "envelopes forwarded to another worker over the wire"
        ).labels()
        self._c_coalesced = registry.counter(
            "dispatch_coalesced_total",
            "envelopes merged into a batched delivery on a certified "
            "channel").labels()
        self._g_blocked = registry.gauge(
            "transport_blocked_channels",
            "channels over capacity at last blocked_channels() scan").labels()
        self._g_inbox = registry.gauge(
            "runtime_inbox_depth", "queued envelopes per destination TE")
        self._inbox_children: dict[str, Any] = {}

    def inbox_gauge(self, dst_te: str) -> Any:
        """The (cached) inbox-depth gauge child for a destination TE.

        The engine and chaos injector share these cells with delivery so
        every inbox mutation — append, pop, drain, loss — is accounted.
        """
        child = self._inbox_children.get(dst_te)
        if child is None:
            child = self._inbox_children[dst_te] = self._g_inbox.labels(
                te=dst_te)
        return child

    # ------------------------------------------------------------------
    # Payload isolation
    # ------------------------------------------------------------------

    def prepare_payload(self, payload: Any) -> Any:
        """Apply the configured isolation policy to an outgoing payload.

        When the substrate guarantees isolation through serialisation
        (``payload_isolated``), the defensive deepcopy is skipped: the
        payload is pickled onto the wire right after, and the consumer
        only ever sees the deserialised copy.
        """
        if (
            self.copy_payloads
            and not self.payload_isolated
            and payload is not NO_RESPONSE
        ):
            self._c_copies.inc()
            return copy.deepcopy(payload)
        return payload

    # ------------------------------------------------------------------
    # Worker-side wire routing (multiprocess substrate)
    # ------------------------------------------------------------------

    def enable_worker_routing(self, placement, local_worker: int,
                              remote_send) -> None:
        """Route envelopes for non-local instances through the wire.

        Called once inside each worker process after the fork:
        ``placement`` maps instance keys to workers, ``remote_send``
        writes one envelope frame towards the coordinator, which
        forwards it to the owning worker. Local hops keep the exact
        in-process delivery path (and the configured ``copy_payloads``
        semantics — within a worker, references are shared again).
        """
        self._placement = placement
        self._local_worker = local_worker
        self._remote_send = remote_send
        # Within a worker the process boundary is gone: local hops
        # share references, so honour copy_payloads again.
        self.payload_isolated = False

    # ------------------------------------------------------------------
    # Capability-driven coalescing
    # ------------------------------------------------------------------

    def enable_coalescing(self, edge_indexes, entry_tes,
                          max_items: int) -> None:
        """Turn on batched delivery for the certified channels.

        ``edge_indexes`` are positions in ``sdg.dataflows`` certified
        ``COALESCIBLE_DISPATCH``; ``entry_tes`` names entry TEs whose
        external-input channel may batch too. Only consecutive
        envelopes of the *same* channel merge (per-channel FIFO order
        is untouched) and request-tagged envelopes never do — barrier
        bookkeeping stays strictly per item.
        """
        self._coalesce_edges = frozenset(edge_indexes)
        self._coalesce_entries = frozenset(entry_tes)
        self._coalesce_max = max_items

    def _coalesce_eligible(self, channel_id: ChannelId) -> bool:
        if channel_id.edge_index == INPUT_EDGE:
            return channel_id.dst_te in self._coalesce_entries
        return channel_id.edge_index in self._coalesce_edges

    def _try_coalesce(self, instance: "TEInstance",
                      envelope: Envelope) -> bool:
        """Merge ``envelope`` into the inbox tail when certified.

        The tail is rebuilt (envelopes are frozen) with the batch as
        payload and the *newest* item's timestamp, so a whole-batch
        duplicate check stays conservative — the engine still dedups
        each batched item individually against ``last_seen``.
        """
        if (
            self._coalesce_edges is None
            or envelope.request_id is not None
            or not instance.inbox
            or not self._coalesce_eligible(envelope.channel)
        ):
            return False
        tail = instance.inbox[-1]
        if (
            tail.channel != envelope.channel
            or tail.request_id is not None
        ):
            return False
        payload = tail.payload
        if type(payload) is Batch:
            if len(payload.items) >= self._coalesce_max:
                return False
            payload.items.append((envelope.ts, envelope.payload))
        else:
            payload = Batch([(tail.ts, tail.payload),
                             (envelope.ts, envelope.payload)])
        instance.inbox[-1] = Envelope(
            payload=payload, ts=envelope.ts, channel=envelope.channel,
            trace_id=tail.trace_id,
        )
        return True

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def channel(self, channel_id: ChannelId) -> Channel:
        """The :class:`Channel` for ``channel_id`` (created on first use)."""
        channel = self._channels.get(channel_id)
        if channel is None:
            channel = self._channels[channel_id] = Channel(channel_id)
        return channel

    def channels(self) -> list[Channel]:
        """Every channel an envelope has ever travelled."""
        return list(self._channels.values())

    def deliver(self, envelope: Envelope) -> bool:
        """Append to the destination inbox; refuse if the node is dead.

        Refused envelopes are not lost: they stay in the producer-side
        output buffer and are replayed during recovery.
        """
        channel = self.channel(envelope.channel)
        if (
            self._placement is not None
            and self._placement.owner_of(
                envelope.channel.dst_te, envelope.channel.dst_instance
            ) != self._local_worker
        ):
            # Not ours: ship it to the owning worker via the wire. The
            # frame counts as delivered on this channel — the owning
            # worker performs the actual inbox append on its side.
            self._c_wire.inc()
            channel.delivered += 1
            self._remote_send(envelope)
            return True
        instance = self._topology.te_instance(
            envelope.channel.dst_te, envelope.channel.dst_instance
        )
        if (
            instance is None
            or not self._topology.nodes[instance.node_id].alive
        ):
            channel.refused += 1
            self._c_refused.inc()
            return False
        if self._try_coalesce(instance, envelope):
            instance.queued_items += 1
            channel.delivered += 1
            self._c_delivered.inc()
            self._c_coalesced.inc()
            return True
        instance.inbox.append(envelope)
        instance.queued_items += 1
        channel.delivered += 1
        self._c_delivered.inc()
        self.inbox_gauge(envelope.channel.dst_te).inc()
        if self.tracer is not None:
            self.tracer.on_deliver(envelope, self._clock())
        return True

    def send(self, src: "TEInstance", edge_index: int, dst_te: str,
             dst_index: int, payload: Any, request_id: int | None,
             expected: int | None, trace_id: int | None = None) -> bool:
        """Stamp, buffer and deliver one item from ``src``.

        The producer-side sequence number and output buffer live on the
        source instance (they are checkpointed with it); the transport
        applies payload isolation and performs the hand-off.
        """
        payload = self.prepare_payload(payload)
        channel = ChannelId(edge_index, src.name, src.index,
                            dst_te, dst_index)
        ts = src.next_seq(channel)
        envelope = Envelope(payload=payload, ts=ts, channel=channel,
                            request_id=request_id,
                            expected_responses=expected,
                            trace_id=trace_id)
        src.record_output(envelope)
        return self.deliver(envelope)

    # ------------------------------------------------------------------
    # Backpressure
    # ------------------------------------------------------------------

    def is_saturated(self, instance: "TEInstance") -> bool:
        """Whether an instance's inbox exceeds the channel capacity.

        Measured in *logical items* (``queued_items``), so a coalesced
        batch weighs its full item count — identical to the envelope
        count whenever coalescing is off.
        """
        return (
            self.capacity is not None
            and instance.queued_items > self.capacity
        )

    def blocked_channels(self) -> list[ChannelId]:
        """Channels whose destination inbox currently exceeds capacity.

        Computed against live inbox depths, so a channel unblocks as
        soon as its destination drains. Deterministically ordered by
        destination then source.
        """
        if self.capacity is None:
            return []
        blocked = []
        for channel_id in self._channels:
            instance = self._topology.te_instance(
                channel_id.dst_te, channel_id.dst_instance
            )
            if (
                instance is not None
                and self._topology.nodes[instance.node_id].alive
                and self.is_saturated(instance)
            ):
                blocked.append(channel_id)
        blocked.sort(key=lambda c: (c.dst_te, c.dst_instance,
                                    c.edge_index, c.src_te, c.src_instance))
        self._g_blocked.set(len(blocked))
        return blocked

    def blocked_destinations(self) -> set[str]:
        """TE names on the receiving end of at least one blocked channel."""
        return {channel.dst_te for channel in self.blocked_channels()}

"""Collaborative-filtering workload model (Fig. 5).

Fig. 5 varies the ratio between state reads (``getRec``) and writes
(``addRating``) and reports throughput (10-14 k req/s band) and the
``getRec`` latency distribution. The mechanism behind the shape:

* a write touches one partition of ``userItem`` plus one replica of
  ``coOcc`` — cheap, perfectly parallel;
* a read multiplies the user's vector on *every* partial ``coOcc``
  instance and crosses the all-to-one merge barrier — the paper
  attributes the throughput decline at read-heavy ratios to exactly
  this synchronisation cost.

The model charges each operation its aggregate cluster work and each
read a barrier latency that grows with utilisation; constants are
calibrated to the paper's two end points (14 k req/s at 1:5,
10 k req/s at 5:1 on 36 EC2 instances).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.simulation.metrics import Candlestick


@dataclass(frozen=True)
class CFModel:
    """Calibrated CF cluster model."""

    #: Aggregate cluster capacity in write-equivalent work units/s.
    cluster_capacity: float = 15_556.0
    write_cost: float = 1.0
    #: Relative cost of a read: partial multiplications on every replica
    #: plus the merge barrier (calibrated: ~1.67x a write).
    read_cost: float = 5.0 / 3.0
    #: Queue-free read latency (network fan-out + merge).
    base_read_latency_s: float = 0.08

    def throughput(self, read_fraction: float) -> float:
        """Sustainable requests/s at the given read share."""
        if not 0 <= read_fraction <= 1:
            raise SimulationError("read fraction must be in [0, 1]")
        cost = (
            (1 - read_fraction) * self.write_cost
            + read_fraction * self.read_cost
        )
        return self.cluster_capacity / cost

    def read_latency(self, read_fraction: float) -> Candlestick:
        """getRec latency candlestick at the given read share.

        The median follows an M/M/1-style queueing factor at the
        configured utilisation; the barrier makes the tail heavy (the
        paper reports results at most ~1.5 s stale at the 95th
        percentile).
        """
        if not 0 <= read_fraction <= 1:
            raise SimulationError("read fraction must be in [0, 1]")
        # Calibrated: barriers amplify queueing as the read share grows.
        rho = 0.5 + 0.35 * read_fraction
        median = self.base_read_latency_s / (1 - rho)
        return Candlestick(
            p5=0.35 * median, p25=0.65 * median, p50=median,
            p75=1.8 * median, p95=4.0 * median,
        )


def ratio_to_read_fraction(reads: int, writes: int) -> float:
    """Fig. 5's "read/write ratio" labels (e.g. 1:5) → read share."""
    if reads < 0 or writes < 0 or reads + writes == 0:
        raise SimulationError("invalid read/write ratio")
    return reads / (reads + writes)

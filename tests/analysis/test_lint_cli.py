"""Tests for the ``repro lint`` CLI subcommand."""

import json
import subprocess
import sys

from repro.cli import main

RACE = "tests.analysis.fixtures.partial_race:PartialRace"
DEAD = "tests.analysis.fixtures.dead_payload:DeadPayload"
CLEAN = "tests.analysis.fixtures.clean:CleanCounters"


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=120,
    )


class TestExitCodes:
    def test_error_diagnostic_exits_one(self, capsys):
        assert main(["lint", RACE]) == 1
        out = capsys.readouterr().out
        assert "SDG301" in out
        assert "1 error(s)" in out

    def test_warning_only_exits_zero(self, capsys):
        assert main(["lint", DEAD]) == 0
        out = capsys.readouterr().out
        assert "SDG305" in out

    def test_clean_target_exits_zero(self, capsys):
        assert main(["lint", CLEAN]) == 0
        assert "clean" in capsys.readouterr().out

    def test_all_bundled_apps_clean(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "7 target(s), 0 error(s), 0 warning(s)" in out

    def test_no_targets_is_an_error(self, capsys):
        assert main(["lint"]) == 1
        assert "nothing to lint" in capsys.readouterr().err

    def test_unlintable_class_reports_cleanly(self, capsys):
        assert main(["lint", "repro.state:Vector"]) == 1
        assert "error:" in capsys.readouterr().err


class TestTargets:
    def test_bundled_app_by_name(self, capsys):
        assert main(["lint", "cf"]) == 0
        out = capsys.readouterr().out
        assert "CollaborativeFiltering" in out

    def test_multiple_targets_aggregate(self, capsys):
        assert main(["lint", "cf", RACE]) == 1
        out = capsys.readouterr().out
        assert "2 target(s)" in out and "SDG301" in out


class TestFormats:
    def test_json_format(self, capsys):
        assert main(["lint", RACE, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["targets"] == 1
        assert payload["summary"]["errors"] >= 1
        [report] = payload["reports"]
        codes = {d["code"] for d in report["diagnostics"]}
        assert codes == {"SDG301"}
        [diag] = report["diagnostics"]
        assert diag["file"].endswith("partial_race.py")
        assert isinstance(diag["line"], int)
        assert diag["hint"]

    def test_output_file_written_alongside_text(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        assert main(["lint", DEAD, "--output", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"report written to {path}" in out
        payload = json.loads(path.read_text())
        assert payload["summary"]["warnings"] >= 1


class TestSubprocess:
    def test_lint_all_via_python_dash_m(self):
        completed = run_cli("lint", "--all")
        assert completed.returncode == 0
        assert "0 error(s)" in completed.stdout

    def test_lint_fixture_exit_code(self):
        completed = run_cli("lint", RACE)
        assert completed.returncode == 1
        assert "SDG301" in completed.stdout


SWAP = "tests.analysis.fixtures.operand_swap_merge:OperandSwapMerge"


class TestCapabilities:
    def test_certified_app_lists_its_grants(self, capsys):
        assert main(["lint", "cf", "--capabilities"]) == 0
        out = capsys.readouterr().out
        assert "capabilities for cf:" in out
        assert ("flags: COMMUTATIVE_MERGE, BATCHABLE_RMW, SUBSTRATE_SAFE"
                in out)
        assert "foldable merges: merge" in out
        assert "refused (baseline path):" in out

    def test_uncertified_app_keeps_only_substrate_and_the_reason(
            self, capsys):
        assert main(["lint", "kvstore", "--capabilities"]) == 0
        out = capsys.readouterr().out
        assert "flags: SUBSTRATE_SAFE" in out
        assert "non-commutative writes" in out

    def test_edges_render_as_arrows(self, capsys):
        assert main(["lint", "wordcount", "--capabilities"]) == 0
        out = capsys.readouterr().out
        assert "coalescible edges: split -> count" in out

    def test_fixture_target_is_refused_with_its_merge(self, capsys):
        main(["lint", SWAP, "--capabilities"])
        out = capsys.readouterr().out
        assert "COMMUTATIVE_MERGE" not in out
        assert "alternating" in out

    def test_json_payload_carries_certificates(self, capsys):
        assert main(["lint", "wordcount", "--capabilities",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        [cert] = payload["capabilities"]
        assert cert["target"] == "wordcount"
        assert cert["flags"] == ["COALESCIBLE_DISPATCH", "SUBSTRATE_SAFE"]
        assert cert["coalescible_edges"] == [["split", "count"]]
        assert cert["batch_state_tes"] == ["count"]

    def test_json_payload_omits_certificates_by_default(self, capsys):
        assert main(["lint", "wordcount", "--format", "json"]) == 0
        assert "capabilities" not in json.loads(capsys.readouterr().out)

    def test_all_bundled_targets_certify(self, capsys):
        assert main(["lint", "--all", "--capabilities"]) == 0
        out = capsys.readouterr().out
        assert out.count("capabilities for ") == 7

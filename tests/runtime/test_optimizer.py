"""Tests for capability-driven dispatch (``RuntimeConfig(optimize=True)``).

The optimizer's contract has two halves, and the suite pins both:

*Soundness* — every relaxed path is gated on a certificate. Uncertified
programs deployed with ``optimize=True`` take the exact baseline path:
coalescing never switches on, no fold is installed, no journal batch
opens, and the differentials below prove ``state_fingerprint``
equality between optimized and baseline runs on both substrates.

*Liveness* — certified programs actually take the relaxed paths: the
transport forms :class:`Batch` payloads and counts them, the gather
barrier folds replica values as they arrive, and the backend batches
RMW journal bookkeeping, each observable through its counter.
"""

import pytest

from repro.apps import CollaborativeFiltering, KeyValueStore
from repro.apps.wordcount import build_wordcount_sdg
from repro.durability.manifest import state_fingerprint
from repro.errors import RuntimeExecutionError
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.envelope import Batch, envelope_weight
from repro.testing import build_iterative_sdg, build_kv_sdg

CORPUS = (
    "state is made explicit and managed by the runtime",
    "the quick brown fox jumps over the lazy dog",
    "every envelope carries a trace id across the dataflow",
)


def feed(runtime, app, items):
    if app == "kvstore":
        for i in range(items):
            runtime.inject("serve", ("put", i % 7, i))
        for i in range(items // 4):
            runtime.inject("serve", ("get", i % 7, None))
    elif app == "wordcount":
        for i in range(items):
            runtime.inject("split", (i, CORPUS[i % len(CORPUS)]))
    else:  # loop
        for i in range(items):
            runtime.inject("stepA", 3 + i % 4)


BUILDERS = {
    "kvstore": (build_kv_sdg, {"table": 2}),
    "wordcount": (lambda: build_wordcount_sdg(window_size=8),
                  {"counts": 2}),
    "loop": (build_iterative_sdg, {"modelA": 2, "modelB": 2}),
}


def run_once(app, substrate, optimize, items=120):
    builder, se_instances = BUILDERS[app]
    config = RuntimeConfig(se_instances=se_instances, substrate=substrate,
                           workers=2 if substrate == "multiprocess" else None,
                           optimize=optimize)
    runtime = Runtime(builder(), config).deploy()
    try:
        feed(runtime, app, items)
        runtime.run_until_idle()
        fingerprint = state_fingerprint(runtime)
        metrics = runtime.merged_metrics()
        counters = {
            name: metrics.total(name)
            for name in ("dispatch_coalesced_total",
                         "merge_early_completions_total",
                         "state_rmw_batches_total",
                         "engine_items_processed_total")
        }
    finally:
        runtime.close()
    return fingerprint, counters


# ---------------------------------------------------------------------------
# Differentials: optimized state == baseline state, both substrates
# ---------------------------------------------------------------------------


class TestDifferentials:
    @pytest.mark.parametrize("substrate", ["inprocess", "multiprocess"])
    @pytest.mark.parametrize("app", sorted(BUILDERS))
    def test_optimized_state_matches_baseline(self, app, substrate):
        base_fp, base_counters = run_once(app, substrate, optimize=False)
        opt_fp, opt_counters = run_once(app, substrate, optimize=True)
        assert opt_fp == base_fp
        # Same logical work, independent of how deliveries were framed.
        assert (opt_counters["engine_items_processed_total"]
                == base_counters["engine_items_processed_total"])
        # Baseline never coalesces; the optimized certified runs do.
        assert base_counters["dispatch_coalesced_total"] == 0
        assert opt_counters["dispatch_coalesced_total"] > 0

    def test_wordcount_batches_rmw_journals(self):
        _, counters = run_once("wordcount", "inprocess", optimize=True)
        assert counters["state_rmw_batches_total"] > 0


# ---------------------------------------------------------------------------
# Soundness: uncertified programs never take a relaxed path
# ---------------------------------------------------------------------------


class TestUncertifiedNeverRelaxed:
    def test_kvstore_program_takes_the_exact_baseline_path(self):
        app = KeyValueStore.launch(RuntimeConfig(optimize=True), table=2)
        runtime = app.runtime
        # The certificate granted nothing the dispatch layer may use.
        assert "COALESCIBLE_DISPATCH" not in runtime.capabilities.flags
        assert runtime.transport._coalesce_edges is None
        assert not runtime._merge_folds

        seen_batches = []
        original = runtime.substrate.process

        def watch(instance, envelope):
            if type(envelope.payload) is Batch:
                seen_batches.append(envelope)
            original(instance, envelope)

        runtime.substrate.process = watch
        for i in range(60):
            app.put(i % 9, i)
            app.bump(i % 9, 1)
        app.run()
        for i in range(9):
            app.get(i)
        app.run()
        assert seen_batches == []
        metrics = runtime.merged_metrics()
        assert metrics.total("dispatch_coalesced_total") == 0
        assert metrics.total("merge_early_completions_total") == 0
        sequential = KeyValueStore()
        for i in range(60):
            sequential.put(i % 9, i)
            sequential.bump(i % 9, 1)
        expected = [sequential.get(i) for i in range(9)]
        assert app.results("get") == expected

    def test_uncertified_program_matches_unoptimized_run(self):
        def run(optimize):
            app = KeyValueStore.launch(
                RuntimeConfig(optimize=optimize), table=2)
            for i in range(40):
                app.put(i % 5, i)
                app.bump(i % 5, 1)
            app.run()
            return state_fingerprint(app.runtime)

        assert run(True) == run(False)


# ---------------------------------------------------------------------------
# Liveness: certified paths really engage
# ---------------------------------------------------------------------------


class TestCertifiedPathsEngage:
    def test_coalescing_forms_batches_on_certified_edges(self):
        config = RuntimeConfig(se_instances={"table": 2}, optimize=True)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        for i in range(50):
            runtime.inject("serve", ("put", i % 3, i))
        # Before draining, the entry inboxes hold coalesced batches
        # whose logical depth the queued_items counter tracks.
        batches = 0
        for instance in runtime.te_instances("serve"):
            weights = [envelope_weight(env) for env in instance.inbox]
            batches += sum(1 for env in instance.inbox
                           if type(env.payload) is Batch)
            assert instance.queued_items == sum(weights)
        assert batches > 0
        runtime.run_until_idle()
        metrics = runtime.merged_metrics()
        assert metrics.total("dispatch_coalesced_total") > 0
        assert metrics.total("engine_items_processed_total") == 50

    def test_batch_respects_the_configured_ceiling(self):
        config = RuntimeConfig(se_instances={"table": 1}, optimize=True,
                               optimize_batch_max=4)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        for i in range(40):
            runtime.inject("serve", ("put", 0, i))
        for instance in runtime.te_instances("serve"):
            for env in instance.inbox:
                assert envelope_weight(env) <= 4
        runtime.run_until_idle()
        assert state_fingerprint(runtime) is not None

    def test_gather_folds_eagerly_and_counts_completions(self):
        def run(optimize):
            app = CollaborativeFiltering.launch(
                RuntimeConfig(optimize=optimize), user_item=2, co_occ=3)
            for user, item, rating in [(0, 1, 5), (0, 2, 3), (1, 1, 4),
                                       (1, 3, 2), (2, 2, 1)]:
                app.add_rating(user, item, rating)
            app.run()
            app.get_rec(0)
            app.run()
            folds = app.runtime.merged_metrics().total(
                "merge_early_completions_total")
            return app.results("get_rec")[0].to_list(), folds

        base_rec, base_folds = run(False)
        opt_rec, opt_folds = run(True)
        assert base_folds == 0
        assert opt_folds > 0
        assert opt_rec == base_rec


# ---------------------------------------------------------------------------
# Gates: configuration and tracer interactions
# ---------------------------------------------------------------------------


class TestGates:
    def test_optimize_defaults_off(self):
        runtime = Runtime(build_kv_sdg()).deploy()
        assert runtime.capabilities is None
        assert runtime.transport._coalesce_edges is None

    def test_optimize_rejects_auto_scale(self):
        config = RuntimeConfig(optimize=True, auto_scale=True)
        with pytest.raises(RuntimeExecutionError, match="auto_scale"):
            Runtime(build_kv_sdg(), config).deploy()

    @pytest.mark.parametrize("bad", [1, True, 0, -3])
    def test_batch_max_must_be_a_real_ceiling(self, bad):
        with pytest.raises(RuntimeExecutionError):
            Runtime(build_kv_sdg(),
                    RuntimeConfig(optimize=True,
                                  optimize_batch_max=bad)).deploy()

    def test_tracer_keeps_transport_coalescing_off(self):
        config = RuntimeConfig(se_instances={"table": 2}, optimize=True,
                               trace=True)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        # The certificate is still computed and attached...
        assert "COALESCIBLE_DISPATCH" in runtime.capabilities.flags
        # ...but per-envelope tracing wins over batched delivery.
        assert runtime.transport._coalesce_edges is None
        for i in range(30):
            runtime.inject("serve", ("put", i % 3, i))
        runtime.run_until_idle()
        assert runtime.merged_metrics().total(
            "dispatch_coalesced_total") == 0

    def test_explicit_capabilities_are_honoured_verbatim(self):
        from repro.analysis.capabilities import ProgramCapabilities

        caps = ProgramCapabilities(target="handmade")  # grants nothing
        config = RuntimeConfig(se_instances={"table": 2}, optimize=True,
                               capabilities=caps)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        assert runtime.capabilities is caps
        assert runtime.transport._coalesce_edges is None

"""Durable, resumable runs: crash the process, resume from a manifest.

This package makes a whole run of the SDG runtime a durable artifact on
disk. A *run directory* holds three things:

* ``manifest.json`` — the :class:`RunManifest`: program fingerprint,
  :class:`RunSpec`, chaos fault plan, and one fenced
  :class:`EpochRecord` per committed epoch (atomically replaced, so a
  ``kill -9`` at any instant leaves epoch K or K-1, never half of one);
* ``backups/`` — the :class:`~repro.recovery.backup.DiskBackupStore`
  holding each node's checkpoint chain (full bases + deltas, PR-3);
* ``events.jsonl`` — the observability event log, exported up to the
  byte offset the manifest fences.

:class:`DurableRunner` drives the epoch loop; :func:`fork_run` clones a
run at a committed epoch via hardlinks. The CLI front ends are
``repro run --durable DIR``, ``repro resume DIR`` and
``repro fork SRC DEST --epoch K``.
"""

from repro.durability.manifest import (
    CRASH_POINTS,
    MANIFEST_NAME,
    SCHEMA_VERSION,
    EpochRecord,
    RunManifest,
    SimulatedCrash,
    atomic_write_json,
    load_manifest,
    manifest_path,
    sdg_fingerprint,
    state_fingerprint,
    write_manifest,
)
from repro.durability.runner import (
    BACKUPS_DIR,
    EVENTS_NAME,
    DurableRunner,
    fork_run,
)
from repro.durability.workload import APPS, DurableWorkload, RunSpec

__all__ = [
    "APPS",
    "BACKUPS_DIR",
    "CRASH_POINTS",
    "DurableRunner",
    "DurableWorkload",
    "EVENTS_NAME",
    "EpochRecord",
    "MANIFEST_NAME",
    "RunManifest",
    "RunSpec",
    "SCHEMA_VERSION",
    "SimulatedCrash",
    "atomic_write_json",
    "fork_run",
    "load_manifest",
    "manifest_path",
    "sdg_fingerprint",
    "state_fingerprint",
    "write_manifest",
]

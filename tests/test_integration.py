"""Full-stack integration: translation + runtime + checkpoints + failure.

These tests wire every layer together the way a deployment would:
an annotated program is translated, deployed with multiple partitions
and replicas, driven by a synthetic workload while the checkpoint
scheduler runs, subjected to node failures, recovered, and finally
checked against an uninterrupted sequential execution of the same
program.
"""

from repro.apps import CollaborativeFiltering, KeyValueStore
from repro.recovery import (
    BackupStore,
    CheckpointManager,
    CheckpointScheduler,
    RecoveryManager,
)
from repro.runtime import RuntimeMonitor
from repro.workloads import KVWorkload, RatingsWorkload


class TestKVFullStack:
    def test_workload_with_scheduled_checkpoints_and_failure(self):
        app = KeyValueStore.launch(table=3)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store)
        scheduler = CheckpointScheduler(manager, every_items=40,
                                        complete_after_steps=10).install()
        recovery = RecoveryManager(app.runtime, store)
        monitor = RuntimeMonitor(sample_every=50).install(app.runtime)

        workload = KVWorkload(n_keys=60, read_fraction=0.0, seed=17)
        sequential = KeyValueStore()

        # Phase 1: load with scheduled checkpoints running.
        for op in workload.ops(300):
            app.put(op.key, op.value)
            sequential.put(op.key, op.value)
        app.run()
        assert scheduler.completed_count >= 3

        # Phase 2: kill the partition with the most keys; recover.
        victim = max(app.runtime.se_instances("table"),
                     key=lambda inst: len(inst.element))
        app.runtime.fail_node(victim.node_id)
        recovery.recover_node(victim.node_id)
        app.run()

        # Phase 3: more traffic after recovery.
        for op in workload.ops(100):
            app.put(op.key, op.value)
            sequential.put(op.key, op.value)
        app.run()
        scheduler.flush()

        merged = {}
        for element in app.state_of("table"):
            merged.update(dict(element.items()))
        expected = dict(sequential.table.items())
        assert merged == expected
        assert monitor.samples  # the monitor observed the run

    def test_reads_correct_across_failure_boundary(self):
        app = KeyValueStore.launch(table=2)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store)
        recovery = RecoveryManager(app.runtime, store)

        for i in range(50):
            app.put(f"k{i}", i)
        app.run()
        manager.checkpoint_all()
        for i in range(50, 80):
            app.put(f"k{i}", i)
        app.run()

        victim = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(victim)
        recovery.recover_node(victim)
        app.run()

        for i in range(80):
            app.get(f"k{i}")
        app.run()
        assert sorted(app.results("get")) == sorted(
            (f"k{i}", i) for i in range(80)
        )


class TestCFFullStack:
    def test_recommendations_survive_co_occ_replica_failure(self):
        app = CollaborativeFiltering.launch(user_item=2, co_occ=3)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store)
        recovery = RecoveryManager(app.runtime, store)
        sequential = CollaborativeFiltering()

        workload = RatingsWorkload(n_users=25, n_items=12,
                                   read_fraction=0.0, seed=23)
        ops = list(workload.ops(200))
        for op in ops[:120]:
            app.add_rating(op.user, op.item, op.rating)
            sequential.add_rating(op.user, op.item, op.rating)
        app.run()
        manager.checkpoint_all()

        for op in ops[120:]:
            app.add_rating(op.user, op.item, op.rating)
            sequential.add_rating(op.user, op.item, op.rating)
        app.run()

        # Kill one co-occurrence replica's node (partial state!).
        victim = app.runtime.se_instances("co_occ")[1].node_id
        app.runtime.fail_node(victim)
        recovery.recover_node(victim)
        app.run()

        app.get_rec(0)
        app.run()
        distributed = app.results("get_rec")[-1].to_list()
        assert distributed == sequential.get_rec(0).to_list()

    def test_user_item_partition_failure_with_inflight_reads(self):
        app = CollaborativeFiltering.launch(user_item=2, co_occ=2)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store)
        recovery = RecoveryManager(app.runtime, store)
        sequential = CollaborativeFiltering()

        ratings = [(u, i, 1 + (u + i) % 5)
                   for u in range(10) for i in range(6)]
        for user, item, rating in ratings:
            app.add_rating(user, item, rating)
            sequential.add_rating(user, item, rating)
        app.run()
        manager.checkpoint_all()

        victim = app.runtime.se_instance("user_item", 0).node_id
        # Queries injected but not yet processed when the node dies.
        for user in range(10):
            app.get_rec(user)
        app.runtime.fail_node(victim)
        recovery.recover_node(victim)
        app.run()

        results = app.results("get_rec")
        assert len(results) == 10
        # Spot-check one user against the sequential ground truth. The
        # results arrive unordered; compare as multisets of vectors.
        expected = sorted(
            tuple(sequential.get_rec(user).to_list())
            for user in range(10)
        )
        got = sorted(tuple(vec.to_list()) for vec in results)
        assert got == expected

"""Spark mechanism model (Figs. 9; recovery comparison in §7).

Spark is a stateless batch system: state lives "as data" in immutable
RDDs, iterative jobs re-instantiate their tasks every iteration (a
per-iteration scheduling cost the materialised SDG does not pay), and
recovery recomputes lost partitions from lineage — effective when
recomputation is cheap, prohibitive for state that depends on the whole
input history.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.batching import scaling_throughput


@dataclass(frozen=True)
class SparkModel:
    """A Spark deployment configuration for iterative batch jobs."""

    #: Per-node scan rate (bytes/s) — same hardware as the SDG runs.
    per_node_rate: float = 550e6
    #: Task (re-)instantiation + scheduling per iteration.
    per_iteration_overhead_s: float = 1.8
    #: Driver coordination that grows with the cluster.
    coordination_cost_s_per_node: float = 0.002
    #: Data scanned per node per iteration (Fig. 9 keeps this constant).
    iteration_data_per_node: float = 1e9

    def lr_throughput(self, n_nodes: int) -> float:
        """Aggregate LR scan throughput (bytes/s) on ``n_nodes``."""
        return scaling_throughput(
            n_nodes,
            self.per_node_rate,
            per_iteration_overhead_s=self.per_iteration_overhead_s,
            iteration_data_per_node=self.iteration_data_per_node,
            coordination_cost_s_per_node=self.coordination_cost_s_per_node,
        )

    def recovery_time(self, history_bytes: float,
                      n_nodes: int) -> float:
        """Lineage recomputation: reprocess the history in parallel.

        For state that depends on the entire input history (the paper's
        argument against recomputation for online algorithms), the lost
        partitions require re-scanning the history — recovery time grows
        with the history, unlike checkpoint-based restore which grows
        only with the state size.
        """
        if n_nodes < 1:
            raise ValueError("need at least one node")
        return (
            history_bytes / (n_nodes * self.per_node_rate)
            + self.per_iteration_overhead_s
        )


@dataclass(frozen=True)
class SDGBatchModel:
    """The SDG side of the Fig. 9 comparison.

    Same per-node scan rate; no per-iteration re-instantiation because
    the dataflow is materialised once and tasks stay pipelined (§3.1).
    A small cost remains for managing the partial model state.
    """

    per_node_rate: float = 550e6
    per_iteration_overhead_s: float = 0.15  # partial-state merge only
    coordination_cost_s_per_node: float = 0.0
    iteration_data_per_node: float = 1e9

    def lr_throughput(self, n_nodes: int) -> float:
        return scaling_throughput(
            n_nodes,
            self.per_node_rate,
            per_iteration_overhead_s=self.per_iteration_overhead_s,
            iteration_data_per_node=self.iteration_data_per_node,
            coordination_cost_s_per_node=self.coordination_cost_s_per_node,
        )

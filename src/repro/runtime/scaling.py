"""Reactive bottleneck and straggler detection (§3.3).

The paper rejects proactive straggler avoidance ("hard due to the many
non-deterministic causes") in favour of a reactive approach borrowed
from speculative execution: each TE is monitored, and when it limits
throughput a new TE instance is created, which may in turn create new
partitioned or partial SE instances.

In the in-process runtime the observable signals are twofold: inbox
backlog — a TE whose instances accumulate queued envelopes faster than
they drain them is a processing bottleneck — and transport-level
**backpressure**, reported by a bounded transport
(``RuntimeConfig(channel_capacity=...)``) when a channel's destination
inbox exceeds its capacity. A TE on the receiving end of a blocked
channel is flagged even when its *mean* backlog sits below the scale
threshold, which catches congestion concentrated on one instance. A
node with ``speed < 1`` (a straggler) manifests as backlog too, because
the scheduler charges it more steps per item; the detector also flags
instances hosted on slow nodes directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Runtime


class BottleneckDetector:
    """Flags TEs whose instances cannot keep up with their input rate."""

    def __init__(self, threshold: int = 64, max_instances: int = 8) -> None:
        self.threshold = threshold
        self.max_instances = max_instances

    def backlog(self, runtime: "Runtime", te_name: str) -> float:
        """Mean inbox length across the TE's live instances."""
        instances = runtime.te_instances(te_name)
        if not instances:
            return 0.0
        return sum(len(i.inbox) for i in instances) / len(instances)

    def straggling_instances(self, runtime: "Runtime",
                             te_name: str) -> list[int]:
        """Instance indices hosted on nodes slower than their peers."""
        flagged = []
        for instance in runtime.te_instances(te_name):
            node = runtime.nodes[instance.node_id]
            if node.speed < 1.0:
                flagged.append(instance.index)
        return flagged

    def bottlenecks(self, runtime: "Runtime") -> list[str]:
        """TE names that should be given an extra instance, worst first.

        Combines two signals: mean inbox depth over the scale threshold,
        and transport backpressure (a bounded channel into the TE is
        over capacity) — the latter flags congestion even when it is
        concentrated on a single instance and the mean stays low.
        """
        backpressured = {
            channel.dst_te for channel in runtime.blocked_channels()
        }
        candidates: list[tuple[float, str]] = []
        for te_name, spec in runtime.sdg.tasks.items():
            if spec.is_merge:
                continue
            if runtime.te_slot_count(te_name) >= self.max_instances:
                continue
            backlog = self.backlog(runtime, te_name)
            if backlog > self.threshold or te_name in backpressured:
                candidates.append((backlog, te_name))
        candidates.sort(reverse=True)
        return [name for _, name in candidates]

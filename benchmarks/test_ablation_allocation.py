"""Ablation 5: why allocation colocates TEs with their SEs (§3.3).

The allocator's guiding rule is "avoid remote state access": every TE
lands on the node of the SE it accesses, so state operations are memory
accesses. The ablation prices the alternative — each state access pays
a network round trip — and shows the orders-of-magnitude throughput gap
that justifies the rule. A second check confirms, structurally, that
the four-step algorithm never produces a remote access edge for any of
the shipped applications.
"""

from conftest import print_figure

from repro.apps import CollaborativeFiltering, KeyValueStore, KMeans
from repro.core import allocate
from repro.simulation import pipelined_throughput

#: In-memory state op vs an in-datacenter RTT.
LOCAL_ACCESS_S = 2e-7
REMOTE_RTT_S = 250e-6


def test_ablation_remote_state_access(benchmark):
    def compute():
        rows = []
        for accesses_per_item in (1, 3, 10):
            local = pipelined_throughput(
                1_000_000,
                per_item_overhead_s=accesses_per_item * LOCAL_ACCESS_S,
            )
            remote = pipelined_throughput(
                1_000_000,
                per_item_overhead_s=accesses_per_item * REMOTE_RTT_S,
            )
            rows.append((accesses_per_item, local, remote,
                         local / remote))
        return rows

    rows = benchmark(compute)
    print_figure(
        "Ablation 5: colocated vs remote state access",
        ["state ops/item", "colocated (items/s)", "remote (items/s)",
         "speedup"],
        rows,
    )
    for _ops, local, remote, speedup in rows:
        assert local > remote
    # Fine-grained access (the CF add_rating path does ~10 state ops
    # per rating) is where remote state becomes untenable.
    assert rows[-1][3] > 50


def test_allocation_never_places_state_remotely(benchmark):
    def check():
        verdicts = {}
        for program in (CollaborativeFiltering, KeyValueStore, KMeans):
            sdg = program.to_sdg()
            allocation = allocate(sdg)
            verdicts[program.__name__] = all(
                allocation.colocated(te.name, te.state)
                for te in sdg.tasks.values()
                if te.state is not None
            )
        return verdicts

    verdicts = benchmark(check)
    print_figure(
        "Ablation 5 (structural): every access edge is node-local",
        ["program", "all accesses local"],
        [(name, str(ok)) for name, ok in verdicts.items()],
    )
    assert all(verdicts.values())

"""Per-envelope causal tracing in logical time.

When a runtime is deployed with ``RuntimeConfig(trace=True)`` every
injected envelope is stamped with a ``trace_id`` that survives dispatch
fan-out, repartition re-routing and crash replay (the id rides the
frozen :class:`~repro.runtime.envelope.Envelope`).  The :class:`Tracer`
reconstructs, per trace, the ordered list of :class:`Hop` records:
which TE instance served the item, how long it waited in the inbox
(queue-wait steps), how long the invocation took (service steps), and
whether the hop was a *replay* of work already executed before a crash.

Everything is denominated in logical steps; the tracer never reads the
wall clock.  With tracing off the engine's hot path does a single
``is None`` check and nothing else — see
``benchmarks/test_obs_overhead.py`` for the enforced bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime imports obs)
    from repro.runtime.envelope import Envelope

__all__ = ["Hop", "Trace", "Tracer"]


@dataclass
class Hop:
    """One service of a traced envelope by one TE instance."""

    te: str
    instance: str
    enqueue_step: int
    entry_step: int
    exit_step: int = -1
    replayed: bool = False

    @property
    def queue_wait(self) -> int:
        """Steps spent in the destination inbox before service."""
        return max(0, self.entry_step - self.enqueue_step)

    @property
    def service_steps(self) -> int:
        """Steps spent inside the invocation (0 while still in flight)."""
        return max(0, self.exit_step - self.entry_step) if self.exit_step >= 0 else 0

    def describe(self) -> str:
        mark = " [replayed]" if self.replayed else ""
        return (
            f"{self.te}/{self.instance} wait={self.queue_wait} "
            f"steps={self.entry_step}->{self.exit_step}{mark}"
        )


@dataclass
class Trace:
    """All hops recorded under one trace id, in service order."""

    trace_id: int
    start_step: int
    hops: list[Hop] = field(default_factory=list)

    @property
    def end_step(self) -> int:
        return max((h.exit_step for h in self.hops if h.exit_step >= 0), default=self.start_step)

    @property
    def latency(self) -> int:
        """End-to-end logical latency: injection to last hop exit."""
        return self.end_step - self.start_step

    @property
    def total_queue_wait(self) -> int:
        return sum(h.queue_wait for h in self.hops)

    @property
    def replayed_hops(self) -> int:
        return sum(1 for h in self.hops if h.replayed)

    def path(self) -> list[str]:
        return [f"{h.te}/{h.instance}" for h in self.hops]

    def describe(self) -> str:
        chain = " -> ".join(h.describe() for h in self.hops) or "(no hops)"
        return (
            f"trace {self.trace_id}: latency={self.latency} "
            f"queue_wait={self.total_queue_wait} hops={len(self.hops)} | {chain}"
        )


def _stream_key(channel) -> tuple[int, str | None, int]:
    return (channel.edge_index, channel.src_te, channel.src_instance)


class Tracer:
    """Collects hop records for traced envelopes.

    The engine drives three callbacks:

    * :meth:`on_deliver` when the transport appends a traced envelope to
      an inbox (records the enqueue step, so queue wait is observable);
    * :meth:`begin_hop` when an instance pops the envelope for service;
    * :meth:`end_hop` when the invocation (and dispatch) completes.

    Replay detection: a hop is ``replayed`` when the same logical item
    — identified by ``(trace_id, destination TE, producer stream key,
    producer sequence number)`` — has already been served once.  The
    engine's duplicate filter drops re-deliveries it has already seen
    on the *same* instance, so replayed hops surface exactly where
    recovery re-executes work on a replacement instance.
    """

    def __init__(self) -> None:
        self._next_id = 1
        self._traces: dict[int, Trace] = {}
        # (trace_id, channel, ts) -> step the envelope entered the inbox
        self._enqueued: dict[tuple, int] = {}
        # (trace_id, dst_te, stream_key, ts) seen served at least once
        self._served: set[tuple] = set()

    # -- trace lifecycle -------------------------------------------------

    def new_trace(self, step: int) -> int:
        trace_id = self._next_id
        self._next_id += 1
        self._traces[trace_id] = Trace(trace_id=trace_id, start_step=step)
        return trace_id

    def on_deliver(self, envelope: "Envelope", step: int) -> None:
        if envelope.trace_id is None:
            return
        self._enqueued[(envelope.trace_id, envelope.channel, envelope.ts)] = step

    def begin_hop(self, envelope: "Envelope", te: str, instance_name: str, step: int) -> Hop | None:
        trace_id = envelope.trace_id
        if trace_id is None:
            return None
        trace = self._traces.get(trace_id)
        if trace is None:
            # Trace ids minted by another runtime (e.g. envelopes carried
            # across a migration) still get a trace record.
            trace = self._traces[trace_id] = Trace(trace_id=trace_id, start_step=step)
        enqueue = self._enqueued.pop((trace_id, envelope.channel, envelope.ts), step)
        item_key = (trace_id, te, _stream_key(envelope.channel), envelope.ts)
        replayed = item_key in self._served
        self._served.add(item_key)
        hop = Hop(
            te=te,
            instance=instance_name,
            enqueue_step=enqueue,
            entry_step=step,
            replayed=replayed,
        )
        trace.hops.append(hop)
        return hop

    def end_hop(self, hop: Hop, step: int) -> None:
        hop.exit_step = step

    # -- read side -------------------------------------------------------

    def trace(self, trace_id: int) -> Trace | None:
        return self._traces.get(trace_id)

    def traces(self) -> list[Trace]:
        return [self._traces[tid] for tid in sorted(self._traces)]

    def latencies(self) -> list[int]:
        return [t.latency for t in self.traces() if t.hops]

    def summary(self, limit: int = 10) -> str:
        """Human-readable digest: latency distribution + sample traces."""
        traces = [t for t in self.traces() if t.hops]
        if not traces:
            return "no traces recorded"
        lats = sorted(t.latency for t in traces)
        waits = sorted(t.total_queue_wait for t in traces)

        def pct(sorted_vals: list[int], q: float) -> int:
            return sorted_vals[min(len(sorted_vals) - 1, int(q * len(sorted_vals)))]

        replayed = sum(t.replayed_hops for t in traces)
        lines = [
            f"traces: {len(traces)}  hops: {sum(len(t.hops) for t in traces)}"
            f"  replayed-hops: {replayed}",
            "latency (logical steps): "
            f"p50={pct(lats, 0.50)} p90={pct(lats, 0.90)} p99={pct(lats, 0.99)} "
            f"max={lats[-1]}",
            "queue wait (logical steps): "
            f"p50={pct(waits, 0.50)} p90={pct(waits, 0.90)} max={waits[-1]}",
            f"slowest {min(limit, len(traces))} traces:",
        ]
        slowest = sorted(traces, key=lambda t: (-t.latency, t.trace_id))[:limit]
        lines.extend(f"  {t.describe()}" for t in slowest)
        return "\n".join(lines)


def merge_traces(tracers: Iterable[Tracer]) -> list[Trace]:
    """Flatten traces from several tracers, ordered by trace id."""
    merged: list[Trace] = []
    for tracer in tracers:
        merged.extend(tracer.traces())
    return sorted(merged, key=lambda t: t.trace_id)

"""SDG401: a lambda stored into a state element.

Fine in-process; under the multiprocess substrate the SE contents
must serialise for checkpoints and cross-process movement, and a
closure cannot. Flagged only by the opt-in substrate-safety pass —
the default pipeline accepts this program.
"""

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class LambdaState(SDGProgram):
    """Caches a thunk instead of the computed value."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def plan(self, key, value):
        self.table.put(key, lambda: value * 2)

"""SDG101 hiding in a module-level free function.

Free functions are not class methods, so the per-method restriction
scan never sees them — before the interprocedural summaries this
program linted clean. The call-graph resolves the bare-name call,
the summary carries the ``random.random()`` site upward, and the
entry is flagged with the chain ``put_noisy → noise``.
"""

import random

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


def noise():
    return random.random()


class FreeFunctionNoise(SDGProgram):
    """Stores a value computed by a nondeterministic free function."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def put_noisy(self, key):
        self.table.put(key, noise())

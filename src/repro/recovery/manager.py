"""Node recovery: restore, repartition, replay (§5, Fig. 4 R-steps).

After :meth:`~repro.runtime.engine.Runtime.fail_node` kills a node, the
:class:`RecoveryManager` rebuilds its instances from the last completed
checkpoint in the backup store:

* **1-to-1 recovery** restores every lost TE/SE instance onto one fresh
  node, with its checkpointed bookkeeping;
* **m-to-n recovery** (``n_new > 1``) restores a failed partitioned SE
  as ``n_new`` partitions on ``n_new`` fresh nodes, re-splitting the
  checkpointed state under a new partitioner — the paper's parallel
  state-reconstruction strategy;
* in both cases, upstream output buffers (and the client input log) are
  replayed into the recovered instances, which discard items already
  covered by the checkpoint via their restored ``last_seen`` vectors,
  and the recovered instances re-send their own buffered outputs
  downstream, where duplicates are discarded by timestamp.
"""

from __future__ import annotations

import copy
from collections import deque
from typing import TYPE_CHECKING

from repro.core.elements import StateKind
from repro.errors import (
    BackupIntegrityError,
    RecoveryError,
    StaleCheckpointError,
)
from repro.obs.events import KIND
from repro.obs.profile import profile_span
from repro.recovery.checkpoint import NodeCheckpoint, TEMeta
from repro.runtime.instances import SEInstance, TEInstance
from repro.runtime.node import PhysicalNode
from repro.state import HashPartitioner
from repro.state.base import StateElement

if TYPE_CHECKING:  # pragma: no cover
    from repro.recovery.backup import BackupStore
    from repro.runtime.engine import Runtime


class RecoveryManager:
    """Restores failed nodes from a backup store."""

    def __init__(self, runtime: "Runtime", store: "BackupStore") -> None:
        self.runtime = runtime
        self.store = store
        metrics = runtime.metrics
        self._c_restores = metrics.counter(
            "recovery_restores_total",
            "successful node restores, by strategy rung")
        self._c_replayed = metrics.counter(
            "recovery_replayed_envelopes_total",
            "envelopes re-delivered during recovery replay").labels()
        self._h_replay_span = metrics.histogram(
            "recovery_replay_span",
            "envelopes replayed per recovery (the replay span length)")

    @staticmethod
    def _strategy(n_new: int, use_checkpoint: bool, use_deltas: bool) -> str:
        """The supervisor-ladder rung this restore corresponds to."""
        if not use_checkpoint:
            return "log-replay"
        if not use_deltas:
            return "base-only"
        return "m-to-n" if n_new > 1 else "one-to-one"

    # ------------------------------------------------------------------

    def recover_node(self, node_id: int, n_new: int = 1,
                     use_checkpoint: bool = True,
                     use_deltas: bool = True) -> list[PhysicalNode]:
        """Replace a failed node; returns the new node(s).

        With an incremental checkpoint chain in the store, the restore
        folds the full base plus its ordered deltas. ``use_deltas=False``
        is the supervisor's **base-only** fallback when the delta part
        of the chain is corrupt or missing: only the full base is
        restored, and the span the deltas covered is recovered by
        replaying the upstream buffers (which are only trimmed on full
        checkpoints, precisely so this path stays sound).

        Without a stored checkpoint — or with ``use_checkpoint=False``,
        the fallback when the stored checkpoint is corrupt or captured
        under a stale partitioning epoch — instances restart empty and
        the entire input history is replayed (pure log-based recovery).
        """
        with profile_span(getattr(self.runtime, "profiler", None),
                          "recovery"):
            return self._recover_node(node_id, n_new, use_checkpoint,
                                      use_deltas)

    def _recover_node(self, node_id: int, n_new: int,
                      use_checkpoint: bool,
                      use_deltas: bool) -> list[PhysicalNode]:
        failed = self.runtime.nodes[node_id]
        if failed.alive:
            raise RecoveryError(f"node {node_id} has not failed")
        checkpoint = None
        if use_checkpoint:
            checkpoint = (
                self.store.latest(node_id) if use_deltas
                else self.store.base(node_id)
            )
        if checkpoint is not None:
            self._check_epochs(checkpoint)
        if n_new < 1:
            raise RecoveryError(f"n_new must be >= 1, got {n_new}")
        if n_new == 1:
            node, replayed = self._recover_one_to_one(failed, checkpoint)
            nodes = [node]
        else:
            nodes, replayed = self._recover_one_to_n(failed, checkpoint,
                                                     n_new)
        strategy = self._strategy(n_new, use_checkpoint, use_deltas)
        self._c_restores.labels(strategy=strategy).inc()
        self._c_replayed.inc(replayed)
        self._h_replay_span.labels().observe(replayed)
        self.runtime.events.publish(
            "recovery", KIND.RESTORE, self.runtime.total_steps,
            node_id=node_id, strategy=strategy,
            new_nodes=[n.node_id for n in nodes], replayed=replayed,
            checkpoint_version=(checkpoint.version
                                if checkpoint is not None else None),
        )
        return nodes

    def migrate_node(self, node_id: int, n_new: int = 1,
                     checkpoint_manager=None) -> list[PhysicalNode]:
        """Planned migration: checkpoint, retire, restore elsewhere.

        §6.3: "a straggling node could even be removed and the job
        resumed from a checkpoint with new nodes". Unlike a failure, a
        migration first takes a fresh checkpoint, so no replay beyond
        the migration point is needed; the node is then failed and
        recovered through the normal path (optionally fanning out to
        ``n_new`` nodes, which doubles as straggler-relief-by-resharding).
        """
        from repro.recovery.checkpoint import CheckpointManager

        manager = checkpoint_manager or CheckpointManager(
            self.runtime, self.store
        )
        if manager.checkpoint(node_id) is None:
            raise RecoveryError(
                f"node {node_id} died while its migration checkpoint "
                f"was being taken"
            )
        self.runtime.fail_node(node_id)
        return self.recover_node(node_id, n_new=n_new)

    def _check_epochs(self, checkpoint: NodeCheckpoint) -> None:
        """Refuse checkpoints taken under a different partitioning.

        Restoring a partition captured when the SE had a different
        partitioner would resurrect keys the instance no longer owns
        (duplicating them) and miss keys it gained — silent corruption.
        After a scale-up, nodes must checkpoint again before their old
        checkpoints can be superseded; the CheckpointScheduler does so
        automatically on epoch changes.
        """
        for se_name, epoch in checkpoint.se_epochs.items():
            current = self.runtime.se_epoch(se_name)
            if epoch != current:
                raise StaleCheckpointError(
                    f"checkpoint of node {checkpoint.node_id} captured "
                    f"SE {se_name!r} at partitioning epoch {epoch}, but "
                    f"the SE has since been repartitioned (epoch "
                    f"{current}); take a fresh checkpoint after scaling "
                    f"before relying on recovery"
                )

    # ------------------------------------------------------------------

    def _restore_element(self, spec, se_key: tuple[str, int],
                         checkpoint: NodeCheckpoint | None) -> StateElement:
        """Reassemble one SE instance from its backed-up chunks (R1/R2).

        When ``checkpoint`` is the head of an incremental chain, the
        full base is restored first and every delta up to
        ``checkpoint.version`` is folded on top, in version order, after
        the lineage is verified to be contiguous. Chunks are fetched
        through the backup store's verified read path, so a missing or
        corrupted chunk — base or delta — raises
        :class:`~repro.errors.BackupIntegrityError` before any state is
        installed — never a silently partial restore.
        """
        template = spec.factory()
        if checkpoint is None:
            return template
        node_id = checkpoint.node_id
        chain = [
            entry for entry in self.store.chain(node_id)
            if entry.version <= checkpoint.version
        ]
        base_index = None
        for i, entry in enumerate(chain):
            if getattr(entry, "kind", "full") == "full":
                base_index = i
        if base_index is None:
            raise BackupIntegrityError(
                f"checkpoint chain of node {node_id} has no full base at "
                f"or before v{checkpoint.version}; cannot restore"
            )
        chain = chain[base_index:]
        for prev, entry in zip(chain, chain[1:]):
            if entry.kind != "delta" or entry.base_version != prev.version:
                raise BackupIntegrityError(
                    f"checkpoint chain of node {node_id} is not "
                    f"contiguous: v{entry.version} ({entry.kind}) does "
                    f"not apply on top of v{prev.version}"
                )
        chunks = self.store.chunks_for(node_id, se_key,
                                       version=chain[0].version)
        element = type(template).from_chunks(template, chunks)
        for entry in chain[1:]:
            for chunk in self.store.chunks_for(node_id, se_key,
                                               version=entry.version):
                element.load_delta_chunk(chunk)
        # The restored instance starts a fresh journal: its first
        # checkpoint on the replacement node is a new full base.
        element.mark_clean()
        return element

    @staticmethod
    def _apply_meta(instance: TEInstance, meta: TEMeta | None) -> None:
        if meta is None:
            return
        instance.last_seen = dict(meta.last_seen)
        instance.out_seq = dict(meta.out_seq)
        instance.output_buffers = {
            channel: deque(buffer)
            for channel, buffer in meta.output_buffers.items()
        }
        instance.pending_gathers = copy.deepcopy(meta.pending_gathers)
        instance.processed_count = meta.processed_count

    def _recover_one_to_one(
        self, failed: PhysicalNode, checkpoint: NodeCheckpoint | None
    ) -> tuple[PhysicalNode, int]:
        se_replacements: list[SEInstance] = []
        for (se_name, index) in failed.se_instances:
            spec = self.runtime.sdg.state(se_name)
            element = self._restore_element(spec, (se_name, index),
                                            checkpoint)
            se_replacements.append(SEInstance(spec, index, element=element))

        te_replacements: list[TEInstance] = []
        for (te_name, index) in failed.te_instances:
            spec = self.runtime.sdg.task(te_name)
            instance = TEInstance(spec, index)
            meta = (
                checkpoint.te_meta.get((te_name, index))
                if checkpoint is not None else None
            )
            self._apply_meta(instance, meta)
            te_replacements.append(instance)

        node = self.runtime.install_replacement(te_replacements,
                                                se_replacements)
        replayed = 0
        for instance in te_replacements:
            replayed += self.runtime.replay_rerouted(instance.name,
                                                     {instance.index})
            replayed += self.runtime.replay_from(instance)
        return node, replayed

    def _recover_one_to_n(
        self, failed: PhysicalNode, checkpoint: NodeCheckpoint | None,
        n_new: int,
    ) -> tuple[list[PhysicalNode], int]:
        """Restore a whole partitioned SE across ``n_new`` fresh nodes."""
        if len(failed.se_instances) != 1:
            raise RecoveryError(
                "1-to-n recovery requires the failed node to host exactly "
                "one SE instance"
            )
        ((se_name, se_index),) = failed.se_instances.keys()
        spec = self.runtime.sdg.state(se_name)
        if spec.kind is not StateKind.PARTITIONED:
            raise RecoveryError(
                f"1-to-n recovery requires a partitioned SE; {se_name!r} "
                f"is {spec.kind.value}"
            )
        if self.runtime.se_instances(se_name) or se_index != 0:
            raise RecoveryError(
                "1-to-n recovery is only supported when the failed node "
                "hosted the only instance of the SE (the paper restores a "
                "whole failed SE onto n new partitions)"
            )

        merged = self._restore_element(spec, (se_name, se_index), checkpoint)
        partitioner = HashPartitioner(n_new)
        self.runtime.set_partitioner(se_name, partitioner)

        accessing = [
            te.name for te in self.runtime.sdg.tasks_accessing(se_name)
        ]
        stateless_keys = [
            key for key in failed.te_instances
            if self.runtime.sdg.task(key[0]).state != se_name
        ]

        nodes: list[PhysicalNode] = []
        for part_index in range(n_new):
            part = merged.extract_partition(partitioner, part_index)
            se_inst = SEInstance(spec, part_index, element=part)
            te_replacements = []
            for te_name in accessing:
                te_spec = self.runtime.sdg.task(te_name)
                instance = TEInstance(te_spec, part_index)
                meta = (
                    checkpoint.te_meta.get((te_name, 0))
                    if checkpoint is not None else None
                )
                if meta is not None:
                    # All partitions inherit the old instance's input
                    # positions (every item <= last_seen is reflected in
                    # the partition that owns its key); only partition 0
                    # inherits the producer-side buffers and counters.
                    instance.last_seen = dict(meta.last_seen)
                    if part_index == 0:
                        instance.out_seq = dict(meta.out_seq)
                        instance.output_buffers = {
                            channel: deque(buffer)
                            for channel, buffer in
                            meta.output_buffers.items()
                        }
                        instance.pending_gathers = copy.deepcopy(
                            meta.pending_gathers
                        )
                        instance.processed_count = meta.processed_count
                te_replacements.append(instance)
            if part_index == 0:
                for (te_name, index) in stateless_keys:
                    te_spec = self.runtime.sdg.task(te_name)
                    instance = TEInstance(te_spec, index)
                    meta = (
                        checkpoint.te_meta.get((te_name, index))
                        if checkpoint is not None else None
                    )
                    self._apply_meta(instance, meta)
                    te_replacements.append(instance)
            nodes.append(
                self.runtime.install_replacement(te_replacements, [se_inst])
            )

        recovered_indices = set(range(n_new))
        replayed = 0
        for te_name in accessing:
            replayed += self.runtime.replay_rerouted(te_name,
                                                     recovered_indices)
        for (te_name, index) in stateless_keys:
            replayed += self.runtime.replay_rerouted(te_name, {index})
        for node in nodes:
            for instance in node.te_instances.values():
                replayed += self.runtime.replay_from(instance)
        return nodes, replayed

"""Runtime monitoring: the signal source for reactive scaling (§3.3).

"Each TE is monitored to determine if it constitutes a processing
bottleneck that limits throughput." The monitor samples, every
``sample_every`` engine steps, each TE's backlog and cumulative
processed count, building the time series that Fig. 10-style analyses
and the bottleneck detector consume.

Since the unified observability layer, the monitor is a thin *view
over the metrics registry*: a sample reads the engine-maintained
``runtime_inbox_depth`` / ``engine_items_processed_total`` /
``runtime_te_instances`` series instead of re-walking every instance.
An initial baseline sample is taken at :meth:`install`, so the series
always start with a point at install time (previously the first sample
only appeared at the first step divisible by ``sample_every``).

.. deprecated:: Direct construction against a runtime deployed with
   ``metrics=NULL_REGISTRY`` records all-zero samples — the monitor
   needs the default (or any real) registry. Note also that the
   ``processed`` series is now the engine's monotone item counter: it
   counts replayed re-executions after recovery and never regresses,
   where the old instance walk reported the surviving instances'
   restored ``processed_count``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Runtime


@dataclass(frozen=True)
class Sample:
    """One monitoring observation."""

    step: int
    backlog: dict[str, int]        # TE name -> queued envelopes
    processed: dict[str, int]      # TE name -> cumulative items
    instances: dict[str, int]      # TE name -> live instance count


@dataclass
class RuntimeMonitor:
    """Samples engine state through the step hook."""

    sample_every: int = 100
    samples: list[Sample] = field(default_factory=list)
    _runtime: "Runtime | None" = None

    def install(self, runtime: "Runtime") -> "RuntimeMonitor":
        self._runtime = runtime
        # Baseline point: without it, every series silently starts at
        # the first step divisible by sample_every (sampling skew).
        self.take_sample(runtime)
        runtime.add_step_hook(self._on_step)
        return self

    def uninstall(self) -> None:
        if self._runtime is not None:
            self._runtime.remove_step_hook(self._on_step)
            self._runtime = None

    def _on_step(self, runtime: "Runtime") -> None:
        if runtime.total_steps % self.sample_every:
            return
        self.take_sample(runtime)

    def take_sample(self, runtime: "Runtime") -> Sample:
        """Record one observation immediately (read from the registry)."""
        backlog_gauge = runtime.metrics.gauge("runtime_inbox_depth")
        processed_counter = runtime.metrics.counter(
            "engine_items_processed_total")
        instances_gauge = runtime.metrics.gauge("runtime_te_instances")
        backlog: dict[str, int] = {}
        processed: dict[str, int] = {}
        instances: dict[str, int] = {}
        for te_name in runtime.sdg.tasks:
            backlog[te_name] = int(backlog_gauge.value(te=te_name))
            processed[te_name] = int(processed_counter.value(te=te_name))
            instances[te_name] = int(instances_gauge.value(te=te_name))
        sample = Sample(step=runtime.total_steps, backlog=backlog,
                        processed=processed, instances=instances)
        self.samples.append(sample)
        return sample

    # ------------------------------------------------------------------

    def backlog_series(self, te_name: str) -> list[tuple[int, int]]:
        """(step, queued items) series for one TE."""
        return [(s.step, s.backlog.get(te_name, 0))
                for s in self.samples]

    def throughput_series(self, te_name: str) -> list[tuple[int, float]]:
        """(step, items/step since previous sample) series for one TE."""
        series: list[tuple[int, float]] = []
        previous: Sample | None = None
        for sample in self.samples:
            if previous is not None:
                steps = sample.step - previous.step
                if steps > 0:
                    done = (sample.processed.get(te_name, 0)
                            - previous.processed.get(te_name, 0))
                    series.append((sample.step, done / steps))
            previous = sample
        return series

    def peak_backlog(self, te_name: str) -> int:
        return max((s.backlog.get(te_name, 0) for s in self.samples),
                   default=0)

"""Structured event bus.

The runtime layers publish typed events here instead of keeping
private logs: the engine (scale-out, repartition epoch, node failure),
the checkpoint manager (begin/commit/abort), the recovery manager and
supervisor (restore, attempt ladder, quarantine), the failure detector
and the chaos injector.  Consumers read the in-order event list, filter
by source/kind, subscribe a callback, or export JSON lines.

Events are ordered by publication, stamped with the *logical* step —
no wall clock, so a deterministic run yields a byte-identical event
stream.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["Event", "EventBus", "KIND"]


class KIND:
    """Well-known event kinds (sources may also publish ad-hoc kinds)."""

    SCALE_OUT = "scale-out"
    REPARTITION = "repartition-epoch"
    NODE_FAILED = "node-failed"
    CHECKPOINT_BEGIN = "checkpoint-begin"
    CHECKPOINT_COMMIT = "checkpoint-commit"
    CHECKPOINT_ABORT = "checkpoint-abort"
    RESTORE = "restore"
    FAILURE_DETECTED = "failure-detected"
    FAULT_INJECTED = "fault-injected"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class Event:
    """One structured occurrence at a logical step.

    ``attrs`` carries the source-specific payload (node ids, checkpoint
    versions, fault descriptions, ...).
    """

    seq: int
    step: int
    source: str
    kind: str
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        record = {
            "seq": self.seq,
            "step": self.step,
            "source": self.source,
            "kind": self.kind,
            **{k: _jsonable(v) for k, v in self.attrs.items()},
        }
        return json.dumps(record, sort_keys=True)


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        if isinstance(value, (list, tuple, set, frozenset)):
            return [_jsonable(v) for v in value]
        return repr(value)


class EventBus:
    """Append-only, in-order stream of :class:`Event` with subscriptions."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._listeners: list[tuple[Callable[[Event], None], frozenset[str] | None]] = []

    def publish(self, source: str, kind: str, step: int, **attrs: Any) -> Event:
        event = Event(seq=len(self._events), step=step, source=source, kind=kind, attrs=attrs)
        self._events.append(event)
        for listener, kinds in self._listeners:
            if kinds is None or kind in kinds:
                listener(event)
        return event

    def subscribe(
        self, listener: Callable[[Event], None], kinds: list[str] | None = None
    ) -> Callable[[Event], None]:
        """Call ``listener`` on every future event (optionally filtered)."""
        self._listeners.append((listener, frozenset(kinds) if kinds else None))
        return listener

    def unsubscribe(self, listener: Callable[[Event], None]) -> None:
        self._listeners = [(cb, kinds) for cb, kinds in self._listeners if cb is not listener]

    def events(self, source: str | None = None, kind: str | None = None) -> list[Event]:
        return [
            e
            for e in self._events
            if (source is None or e.source == source) and (kind is None or e.kind == kind)
        ]

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self._events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    def to_jsonl(self) -> str:
        """One JSON object per line, in publication order."""
        return "\n".join(e.to_json() for e in self._events) + ("\n" if self._events else "")

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(list(self._events))

"""Scale-up applied to *translated* programs (annotations + §3.3)."""

from repro.apps import CollaborativeFiltering, KeyValueStore


class TestTranslatedKVScaling:
    def test_scale_partitioned_table_preserves_data(self):
        app = KeyValueStore.launch(table=1)
        for i in range(60):
            app.put(f"k{i}", i)
        app.run()
        entry_te = app.translation.entry_info("put").entry_te
        assert app.runtime.scale_up(entry_te)
        assert len(app.runtime.se_instances("table")) == 2
        for i in range(60):
            app.get(f"k{i}")
        app.run()
        assert sorted(app.results("get")) == sorted(
            (f"k{i}", i) for i in range(60)
        )

    def test_sibling_entries_scale_together(self):
        app = KeyValueStore.launch(table=1)
        put_te = app.translation.entry_info("put").entry_te
        get_te = app.translation.entry_info("get").entry_te
        app.runtime.scale_up(put_te)
        # get accesses the same partitioned SE: its instances follow.
        assert len(app.runtime.te_instances(get_te)) == 2


class TestTranslatedCFScaling:
    RATINGS = [(u, i, 1 + (u + i) % 5)
               for u in range(8) for i in range(5)]

    def test_scale_user_item_matrix_by_row(self):
        """The user-item Matrix repartitions by row (user) and keyed
        reads keep matching the sequential program."""
        seq = CollaborativeFiltering()
        app = CollaborativeFiltering.launch(user_item=1, co_occ=1)
        for rating in self.RATINGS:
            seq.add_rating(*rating)
            app.add_rating(*rating)
        app.run()
        update_te = app.translation.entry_info("add_rating").te_names[0]
        assert app.runtime.scale_up(update_te)
        assert len(app.runtime.se_instances("user_item")) == 2
        # Rows are split by user: each partition holds whole users.
        partitioner = app.runtime._partitioners["user_item"]
        for inst in app.runtime.se_instances("user_item"):
            for (row, _col), _value in inst.element._store_items():
                assert partitioner.partition(row) == inst.index
        # More ratings + a read after scaling still match sequential.
        extra = [(0, 4, 2), (7, 0, 3)]
        for rating in extra:
            seq.add_rating(*rating)
            app.add_rating(*rating)
        app.run()
        app.get_rec(0)
        app.run()
        assert (app.results("get_rec")[-1].to_list()
                == seq.get_rec(0).to_list())

    def test_scale_partial_co_occ_adds_replica(self):
        app = CollaborativeFiltering.launch(user_item=1, co_occ=1)
        for rating in self.RATINGS:
            app.add_rating(*rating)
        app.run()
        update_te = app.translation.entry_info("add_rating").te_names[1]
        assert app.runtime.scale_up(update_te)
        replicas = app.runtime.se_instances("co_occ")
        assert len(replicas) == 2
        assert replicas[1].element.nnz() == 0  # fresh replica
        # Reads gather from both replicas and still sum correctly.
        seq = CollaborativeFiltering()
        for rating in self.RATINGS:
            seq.add_rating(*rating)
        app.get_rec(1)
        app.run()
        assert (app.results("get_rec")[-1].to_list()
                == seq.get_rec(1).to_list())

"""Property-based tests for Matrix/DenseMatrix distribution support."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.state import DenseMatrix, HashPartitioner, Matrix

cells = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20),
              st.floats(-1e6, 1e6, allow_nan=False)),
    max_size=50,
)


def fill(matrix, triples):
    model = {}
    for row, col, value in triples:
        matrix.set_element(row, col, value)
        model[(row, col)] = value
    return model


@given(triples=cells, m=st.integers(1, 6))
def test_matrix_chunk_roundtrip(triples, m):
    matrix = Matrix()
    model = fill(matrix, triples)
    restored = Matrix.from_chunks(matrix, matrix.to_chunks(m))
    for (row, col), value in model.items():
        assert restored.get_element(row, col) == value
    assert restored.nnz() == matrix.nnz()


@given(triples=cells, n=st.integers(1, 5),
       axis=st.sampled_from(["row", "col"]))
def test_matrix_partition_cover(triples, n, axis):
    matrix = Matrix(partition_axis=axis)
    model = fill(matrix, triples)
    partitioner = HashPartitioner(n)
    parts = [matrix.extract_partition(partitioner, i) for i in range(n)]
    # Disjoint cover, with every cell in the partition owning its axis.
    total = 0
    for index, part in enumerate(parts):
        for (row, col), value in part._store_items():
            key = row if axis == "row" else col
            assert partitioner.partition(key) == index
            assert model[(row, col)] == value
            total += 1
    assert total == len(model)
    merged = Matrix.merge_partitions(parts)
    assert sorted(merged._store_items()) == sorted(
        matrix._store_items()
    )


@given(triples=cells)
@settings(max_examples=50)
def test_matrix_checkpoint_transparency(triples):
    plain = Matrix()
    checkpointed = Matrix()
    half = len(triples) // 2
    fill(plain, triples[:half])
    fill(checkpointed, triples[:half])
    checkpointed.begin_checkpoint()
    fill(plain, triples[half:])
    fill(checkpointed, triples[half:])
    assert sorted(checkpointed._iter_items()) == sorted(
        plain._store_items()
    )
    checkpointed.consolidate()
    assert sorted(checkpointed._store_items()) == sorted(
        plain._store_items()
    )
    # Row index must be consistent after consolidation.
    for row in range(21):
        assert (checkpointed.get_row(row).to_list()
                == plain.get_row(row).to_list())


@given(
    n_rows=st.integers(1, 6), n_cols=st.integers(1, 6),
    writes=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                              st.floats(-100, 100, allow_nan=False)),
                    max_size=20),
    m=st.integers(1, 4),
)
def test_dense_matrix_chunk_roundtrip(n_rows, n_cols, writes, m):
    matrix = DenseMatrix(n_rows, n_cols)
    for row, col, value in writes:
        if row < n_rows and col < n_cols:
            matrix.set_element(row, col, value)
    restored = DenseMatrix.from_chunks(matrix, matrix.to_chunks(m))
    assert restored.n_rows == n_rows and restored.n_cols == n_cols
    for row in range(n_rows):
        assert (restored.get_row(row).to_list()
                == matrix.get_row(row).to_list())

"""The ``KeyValueMap`` state element.

A hash-map SE (the paper's ``HashMap``), used by the distributed
key/value store of §6.1 — the benchmark the paper calls "an algorithm
with pure mutable state" — and by the streaming wordcount counts.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.state.base import StateElement


class KeyValueMap(StateElement):
    """A dictionary SE supporting hash or range partitioning.

    Physical storage is the default
    :class:`~repro.state.backend.DictBackend`; this class is purely the
    domain API.
    """

    BYTES_PER_ENTRY = 64

    def spawn_empty(self) -> "KeyValueMap":
        return KeyValueMap()

    # -- domain API ----------------------------------------------------

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or overwrite ``key``."""
        self._set(key, value)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the value for ``key`` or ``default`` when absent."""
        return self._get(key, default)

    def delete(self, key: Hashable) -> None:
        """Remove ``key``; raises :class:`KeyError` when absent."""
        self._delete(key)

    def contains(self, key: Hashable) -> bool:
        """Whether ``key`` is present (overlay-aware)."""
        return self._contains(key)

    def increment(self, key: Hashable, delta: float = 1) -> float:
        """Add ``delta`` to a numeric value (0 when absent); return it.

        This is the fine-grained update exercised by streaming wordcount.
        """
        value = self._get(key, 0) + delta
        self._set(key, value)
        return value

    def keys(self) -> list[Hashable]:
        """All logical keys (overlay-aware), in unspecified order."""
        return [key for key, _ in self._iter_items()]

    def items(self) -> list[tuple[Hashable, Any]]:
        """All logical ``(key, value)`` pairs (overlay-aware)."""
        return list(self._iter_items())

    def __len__(self) -> int:
        return self.entry_count()

    def __repr__(self) -> str:
        return (
            f"KeyValueMap(len={len(self._backend)}, "
            f"dirty={self.dirty_size})"
        )

"""Unit tests for live-variable analysis (step 5)."""

import ast

from repro.translate.liveness import block_uses_defs, live_ins, uses_defs


def stmt(code: str) -> ast.stmt:
    return ast.parse(code).body[0]


def stmts(code: str) -> list[ast.stmt]:
    return ast.parse(code).body


class TestUsesDefs:
    def test_simple_assign(self):
        uses, defs = uses_defs(stmt("x = y + 1"))
        assert uses == {"y"}
        assert defs == {"x"}

    def test_use_before_def_within_statement(self):
        uses, defs = uses_defs(stmt("x = x + 1"))
        assert uses == {"x"}
        assert defs == {"x"}

    def test_def_then_use_is_not_a_use(self):
        uses, defs = block_uses_defs(stmts("x = 1\ny = x"))
        assert uses == set()
        assert defs == {"x", "y"}

    def test_aug_assign_uses_target(self):
        uses, defs = uses_defs(stmt("total += v"))
        assert uses == {"total", "v"}
        assert defs == {"total"}

    def test_for_loop_target_is_def(self):
        uses, defs = uses_defs(stmt(
            "for i in items:\n    out = out + i"
        ))
        assert "items" in uses
        assert "out" in uses  # used before defined on first iteration
        assert "i" in defs

    def test_loop_local_def_before_use_not_live(self):
        uses, defs = uses_defs(stmt(
            "for i in items:\n    t = i * 2\n    acc.append(t)"
        ))
        assert "t" not in uses
        assert "acc" in uses

    def test_if_branches_union_uses(self):
        uses, defs = uses_defs(stmt(
            "if cond:\n    x = a\nelse:\n    x = b"
        ))
        assert uses == {"cond", "a", "b"}
        assert defs == {"x"}

    def test_self_is_ignored(self):
        uses, defs = uses_defs(stmt("self.table.put(k, v)"))
        assert uses == {"k", "v"}

    def test_comprehension_target_is_scoped(self):
        uses, defs = uses_defs(stmt("out = [w * 2 for w in words]"))
        assert uses == {"words"}
        assert "w" not in defs

    def test_lambda_params_are_scoped(self):
        uses, defs = uses_defs(stmt("f = lambda a: a + b"))
        assert uses == {"b"}


class TestBlockLiveness:
    def test_params_feed_first_block(self):
        blocks = [stmts("x = user + 1"), stmts("y = x + item")]
        lives = live_ins(blocks, ["user", "item"])
        assert lives[0] == ["user", "item"]
        assert lives[1] == ["item", "x"]

    def test_transitive_liveness(self):
        # 'user' skips the middle block and is used in the last one.
        blocks = [stmts("a = user"), stmts("b = a"), stmts("c = b + user")]
        lives = live_ins(blocks, ["user"])
        assert lives[1] == ["a", "user"]
        assert lives[2] == ["b", "user"]

    def test_redefined_variable_not_carried(self):
        blocks = [stmts("x = 1"), stmts("x = 2\ny = x")]
        lives = live_ins(blocks, [])
        assert lives[1] == []

    def test_globals_not_carried(self):
        # 'range' is never defined upstream, so it is not payload.
        blocks = [stmts("x = 1"), stmts("y = [x for i in range(3)]")]
        lives = live_ins(blocks, [])
        assert lives[1] == ["x"]

    def test_deterministic_order(self):
        blocks = [stmts("b = 1\na = 2\nz = 3"), stmts("w = a + b + z")]
        assert live_ins(blocks, [])[1] == ["a", "b", "z"]

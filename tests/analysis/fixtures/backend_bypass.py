"""SDG303: a write that bypasses the journalled state API.

Poking ``_backend._data`` mutates state without recording the key in
the mutation journal — the next delta checkpoint omits the entry and
recovery restores a state that never contained it.
"""

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class BackendBypass(SDGProgram):
    """Writes through the backend internals instead of ``put``."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def poke(self, key, value):
        self.table._backend._data[key] = value

"""Streaming windowed wordcount (§6.1, update-granularity experiment).

Wordcount exercises frequent fine-grained state updates: every token
increments one counter. The splitter fans a line out into many word
items (one input, many outputs), which the annotated programming model
deliberately does not express — so this application uses the low-level
SDG API with ``ctx.emit``, as a dataflow author would in SEEP.

Items are ``(timestamp, line)`` pairs; the splitter assigns each word
the window ``timestamp // window_size`` and the counting TE maintains
``counts[(window, word)]``. Queries read a word's count in a window.
"""

from __future__ import annotations

from repro.core import SDG, AccessMode, Dispatch, StateKind
from repro.state import KeyValueMap


def build_wordcount_sdg(window_size: int = 1000) -> SDG:
    """A two-stage wordcount SDG: split → keyed count.

    ``window_size`` is in the same (logical-time) unit as the item
    timestamps, mirroring the wall-clock windows of the paper's WC.
    """
    if window_size < 1:
        raise ValueError(f"window_size must be >= 1, got {window_size}")
    sdg = SDG("wordcount")
    sdg.add_state("counts", KeyValueMap, kind=StateKind.PARTITIONED,
                  partition_by="word")

    def split(ctx, item):
        timestamp, line = item
        window = timestamp // window_size
        for word in line.split():
            ctx.emit((window, word))

    def count(ctx, item):
        window, word = item
        ctx.state.increment((window, word))

    def query(ctx, item):
        window, word = item
        return (window, word, ctx.state.get((window, word), 0))

    sdg.add_task("split", split, is_entry=True)
    sdg.add_task("count", count, state="counts",
                 access=AccessMode.PARTITIONED)
    sdg.add_task("query", query, state="counts",
                 access=AccessMode.PARTITIONED, is_entry=True,
                 entry_key_fn=lambda item: item[1], entry_key_name="word")
    sdg.connect("split", "count", Dispatch.KEY_PARTITIONED,
                key_fn=lambda item: item[1], key_name="word")
    return sdg

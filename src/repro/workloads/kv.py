"""Key/value request workload (§6.1 state-size experiments).

Generates put/get streams over a configurable key space. Keys can be
drawn uniformly (pure state growth, as in Fig. 6/7 where every request
updates a distinct dictionary key) or with Zipf skew (hot keys, useful
for straggler and partitioning experiments).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class KVOp:
    kind: str  # "put" | "get"
    key: str
    value: int | None = None


class KVWorkload:
    """A deterministic stream of KV operations."""

    def __init__(self, n_keys: int = 10_000, read_fraction: float = 0.0,
                 skew: float | None = None, seed: int = 11) -> None:
        if not 0 <= read_fraction <= 1:
            raise ValueError("read_fraction must be in [0, 1]")
        self.n_keys = n_keys
        self.read_fraction = read_fraction
        self._rng = random.Random(seed)
        self._sampler = (
            ZipfSampler(n_keys, s=skew, seed=seed + 1)
            if skew is not None else None
        )

    def _key(self) -> str:
        if self._sampler is not None:
            return f"key{self._sampler.sample()}"
        return f"key{self._rng.randrange(self.n_keys)}"

    def ops(self, count: int) -> Iterator[KVOp]:
        for _ in range(count):
            key = self._key()
            if self._rng.random() < self.read_fraction:
                yield KVOp(kind="get", key=key)
            else:
                yield KVOp(kind="put", key=key,
                           value=self._rng.randrange(1_000_000))

    def apply_to(self, app, count: int) -> tuple[int, int]:
        """Drive a :class:`~repro.apps.kvstore.KeyValueStore` program."""
        writes = reads = 0
        for op in self.ops(count):
            if op.kind == "put":
                app.put(op.key, op.value)
                writes += 1
            else:
                app.get(op.key)
                reads += 1
        return writes, reads

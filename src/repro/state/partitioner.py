"""Partitioning strategies for partitioned state and keyed dataflows.

The paper allows different data structures to support different
partitioning strategies (§3.2): "a map can be hash- or range-partitioned;
a matrix can be partitioned by row or column". The same strategies are
used to dispatch keyed dataflow items to TE instances so that every TE
instance accesses its co-located SE partition locally (§3.2, §4.2).
"""

from __future__ import annotations

import bisect
from typing import Hashable, Sequence

from repro.errors import StateError
from repro.state.base import stable_hash


class Partitioner:
    """Base class: maps a partitioning key to a partition index."""

    def __init__(self, n_partitions: int) -> None:
        if n_partitions < 1:
            raise StateError(
                f"partition count must be >= 1, got {n_partitions}"
            )
        self.n_partitions = n_partitions

    def partition(self, key: Hashable) -> int:
        """Return the partition index in ``[0, n_partitions)`` for ``key``."""
        raise NotImplementedError

    def rescaled(self, n_partitions: int) -> "Partitioner":
        """Return a new partitioner of the same kind with a new fan-out.

        Used when the runtime adds SE instances in response to bottlenecks
        (§3.3) and the key space must be re-split.
        """
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.__dict__ == other.__dict__  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((type(self).__name__, self.n_partitions))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_partitions={self.n_partitions})"


class HashPartitioner(Partitioner):
    """Stable-hash partitioning (the default for keyed dispatch)."""

    def partition(self, key: Hashable) -> int:
        return stable_hash(key) % self.n_partitions

    def rescaled(self, n_partitions: int) -> "HashPartitioner":
        return HashPartitioner(n_partitions)


class RangePartitioner(Partitioner):
    """Range partitioning over ordered keys.

    ``boundaries`` are the *upper* split points: with boundaries
    ``[10, 20]`` keys ``< 10`` go to partition 0, ``10 <= k < 20`` to
    partition 1 and ``>= 20`` to partition 2.
    """

    def __init__(self, boundaries: Sequence) -> None:
        bounds = list(boundaries)
        if sorted(bounds) != bounds:
            raise StateError("range boundaries must be sorted ascending")
        super().__init__(len(bounds) + 1)
        self.boundaries = bounds

    def partition(self, key) -> int:
        return bisect.bisect_right(self.boundaries, key)

    def rescaled(self, n_partitions: int) -> "RangePartitioner":
        raise StateError(
            "a RangePartitioner cannot be rescaled automatically; "
            "supply new boundaries explicitly"
        )

    def __repr__(self) -> str:
        return f"RangePartitioner(boundaries={self.boundaries!r})"

"""Supervised automatic recovery: detect -> restore, no manual calls."""

import pytest

from repro.apps import KeyValueStore
from repro.errors import BackupIntegrityError, RecoveryError
from repro.recovery import (
    BackupStore,
    CheckpointManager,
    CheckpointScheduler,
    RecoveryManager,
    RecoverySupervisor,
)
from repro.runtime import FailureDetector
from repro.workloads import KVWorkload


def put_te_of(app):
    return app.translation.entry_info("put").entry_te


def merged_state(app):
    merged = {}
    for element in app.state_of("table"):
        merged.update(dict(element.items()))
    return merged


def supervised_kv(table=2, *, n_new=1, every_items=25, **sup_kwargs):
    """A KV deployment with the full detect-and-repair loop installed."""
    app = KeyValueStore.launch(table=table)
    store = BackupStore(m_targets=2)
    manager = CheckpointManager(app.runtime, store, trim_input_log=False)
    scheduler = CheckpointScheduler(manager, every_items=every_items,
                                    complete_after_steps=3).install()
    recovery = RecoveryManager(app.runtime, store)
    detector = FailureDetector(app.runtime, heartbeat_timeout=20,
                               check_every=5).install()
    supervisor = RecoverySupervisor(detector, recovery,
                                    n_new=n_new, **sup_kwargs).install()
    return app, store, scheduler, detector, supervisor


class TestAutomaticRecovery:
    def test_unannounced_kill_is_detected_and_recovered(self):
        app, _store, scheduler, detector, supervisor = supervised_kv()
        oracle = KeyValueStore()
        ops = list(KVWorkload(n_keys=60, read_fraction=0.0,
                              seed=11).ops(400))
        for op in ops[:150]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()

        victim = app.runtime.se_instance("table", 1).node_id
        app.runtime.fail_node(victim)  # nobody calls recover_node

        for op in ops[150:]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()

        assert supervisor.settled
        assert [e.kind for e in supervisor.events] == [
            "detected", "recovery-started", "recovered"
        ]
        ((detection, outcome),) = supervisor.cycles()
        assert detection.node_id == victim
        assert outcome.kind == "recovered"
        assert outcome.new_nodes
        scheduler.flush()
        assert merged_state(app) == dict(oracle.table.items())

    def test_crash_is_reported_and_recovered_in_the_same_run(self):
        app, _store, scheduler, detector, supervisor = supervised_kv()
        oracle = KeyValueStore()
        ops = list(KVWorkload(n_keys=60, read_fraction=0.0,
                              seed=13).ops(400))
        for op in ops[:100]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()

        instance = app.runtime.te_instances(put_te_of(app))[0]
        instance.crash_next = True

        for op in ops[100:]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()

        assert detector.detected("crashed")
        assert supervisor.settled
        ((detection, outcome),) = supervisor.cycles()
        assert detection.detail == "crashed"
        assert outcome.kind == "recovered"
        scheduler.flush()
        assert merged_state(app) == dict(oracle.table.items())

    def test_stalled_node_is_restarted(self):
        app, _store, scheduler, detector, supervisor = supervised_kv()
        detector.stall_timeout = 40
        oracle = KeyValueStore()
        ops = list(KVWorkload(n_keys=60, read_fraction=0.0,
                              seed=17).ops(500))
        for op in ops[:150]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()
        scheduler.flush()

        wedged = app.runtime.nodes[
            app.runtime.se_instance("table", 0).node_id
        ]
        wedged.speed = 0.0

        for op in ops[150:]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()

        assert supervisor.settled
        detection = [e for e in supervisor.events if e.kind == "detected"]
        assert detection and detection[0].detail == "stalled"
        assert [e.kind for e in supervisor.events if e.kind == "recovered"]
        scheduler.flush()
        assert merged_state(app) == dict(oracle.table.items())


class TestStrategyLadder:
    def test_m_to_n_falls_back_to_one_to_one(self):
        """n-way restore refused (sibling partitions alive) -> 1-to-1."""
        app, _store, scheduler, _detector, supervisor = supervised_kv(
            n_new=2
        )
        oracle = KeyValueStore()
        ops = list(KVWorkload(n_keys=60, read_fraction=0.0,
                              seed=19).ops(400))
        for op in ops[:150]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()

        victim = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(victim)
        for op in ops[150:]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()

        assert supervisor.settled
        fallbacks = [e for e in supervisor.events if e.kind == "fallback"]
        assert fallbacks and "one-to-one" in fallbacks[0].detail
        (recovered,) = [e for e in supervisor.events
                        if e.kind == "recovered"]
        assert recovered.detail == "one-to-one"
        scheduler.flush()
        assert merged_state(app) == dict(oracle.table.items())

    def test_corrupt_checkpoint_falls_back_to_log_replay(self):
        """The acceptance scenario: CRC failure -> typed error -> replay."""
        app, store, scheduler, _detector, supervisor = supervised_kv()
        oracle = KeyValueStore()
        ops = list(KVWorkload(n_keys=60, read_fraction=0.0,
                              seed=23).ops(500))
        for op in ops[:200]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()
        scheduler.flush()

        victim = app.runtime.se_instance("table", 1).node_id
        key = store.corrupt_chunk(victim)
        assert key is not None
        # The corruption is detected via checksum and surfaces typed.
        # corrupt_chunk returns (node_id, version, se_key, chunk_index).
        with pytest.raises(BackupIntegrityError, match="CRC-32"):
            store.chunks_for(victim, key[2])

        app.runtime.fail_node(victim)
        for op in ops[200:]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()

        assert supervisor.settled
        fallbacks = [e for e in supervisor.events if e.kind == "fallback"]
        assert fallbacks and "log-replay" in fallbacks[0].detail
        (recovered,) = [e for e in supervisor.events
                        if e.kind == "recovered"]
        assert recovered.detail == "log-replay"
        scheduler.flush()
        assert merged_state(app) == dict(oracle.table.items())

    def test_stale_epoch_falls_back_to_log_replay(self):
        """Failure in the post-scale-up window before fresh checkpoints."""
        app = KeyValueStore.launch(table=2)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store,
                                    trim_input_log=False)
        recovery = RecoveryManager(app.runtime, store)
        detector = FailureDetector(app.runtime, heartbeat_timeout=20,
                                   check_every=5).install()
        supervisor = RecoverySupervisor(detector, recovery).install()
        oracle = KeyValueStore()
        ops = list(KVWorkload(n_keys=60, read_fraction=0.0,
                              seed=29).ops(400))
        for op in ops[:150]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()
        manager.checkpoint_all()

        # Epoch bump invalidates every checkpoint of the table.
        assert app.runtime.scale_up(put_te_of(app))
        victim = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(victim)

        for op in ops[150:]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()

        assert supervisor.settled
        fallbacks = [e for e in supervisor.events if e.kind == "fallback"]
        assert fallbacks and "log-replay" in fallbacks[0].detail
        assert merged_state(app) == dict(oracle.table.items())


class TestRetryAndQuarantine:
    class _FailingManager:
        """A recovery manager whose backend never comes back."""

        def __init__(self, runtime):
            self.runtime = runtime
            self.calls = 0

        def recover_node(self, node_id, n_new=1, use_checkpoint=True):
            self.calls += 1
            raise RecoveryError("backup store unreachable")

    def test_bounded_retry_with_backoff_then_quarantine(self):
        app = KeyValueStore.launch(table=2)
        detector = FailureDetector(app.runtime, heartbeat_timeout=10,
                                   check_every=2).install()
        manager = self._FailingManager(app.runtime)
        supervisor = RecoverySupervisor(detector, manager, max_retries=2,
                                        backoff_steps=5).install()
        victim = app.runtime.se_instance("table", 1).node_id
        app.runtime.fail_node(victim)
        for i in range(600):
            app.put(i, i)
        app.run()

        assert manager.calls == 2
        assert victim in supervisor.quarantined
        assert supervisor.settled
        kinds = [e.kind for e in supervisor.events]
        assert kinds == ["detected", "recovery-started", "recovery-failed",
                         "recovery-started", "quarantined"]
        failed = [e for e in supervisor.events
                  if e.kind == "recovery-failed"]
        assert "retrying in 5 steps" in failed[0].detail
        # A quarantined node is left alone even if re-detected somehow.
        ((_detection, outcome),) = supervisor.cycles()
        assert outcome.kind == "quarantined"

    def test_validation(self):
        app = KeyValueStore.launch(table=1)
        detector = FailureDetector(app.runtime)
        manager = self._FailingManager(app.runtime)
        with pytest.raises(RecoveryError):
            RecoverySupervisor(detector, manager, n_new=0)
        with pytest.raises(RecoveryError):
            RecoverySupervisor(detector, manager, max_retries=0)
        with pytest.raises(RecoveryError):
            RecoverySupervisor(detector, manager, backoff_steps=-1)

"""Unit tests for the sparse Matrix and DenseMatrix state elements."""

import pytest

from repro.errors import StateError
from repro.state import DenseMatrix, Matrix, Vector


class TestSparseMatrix:
    def test_unwritten_cell_reads_zero(self):
        assert Matrix().get_element(3, 4) == 0.0

    def test_set_then_get(self):
        m = Matrix()
        m.set_element(1, 2, 7.0)
        assert m.get_element(1, 2) == 7.0

    def test_add_element(self):
        m = Matrix()
        assert m.add_element(0, 0, 1.0) == 1.0
        assert m.add_element(0, 0, 1.0) == 2.0

    def test_nnz_counts_stored_cells(self):
        m = Matrix()
        m.set_element(0, 0, 1.0)
        m.set_element(5, 9, 2.0)
        assert m.nnz() == 2

    def test_dimensions(self):
        m = Matrix()
        m.set_element(2, 7, 1.0)
        assert m.num_rows() == 3
        assert m.num_cols() == 8

    def test_empty_dimensions(self):
        assert Matrix().num_rows() == 0
        assert Matrix().num_cols() == 0

    def test_get_row_returns_vector_copy(self):
        m = Matrix()
        m.set_element(1, 0, 3.0)
        m.set_element(1, 2, 4.0)
        row = m.get_row(1)
        assert row.get(0) == 3.0
        assert row.get(2) == 4.0
        row.set(0, 99.0)
        assert m.get_element(1, 0) == 3.0  # copy, not a view

    def test_set_row_replaces_contents(self):
        m = Matrix()
        m.set_element(0, 5, 1.0)
        m.set_row(0, Vector(values=[2.0, 0.0, 3.0]))
        assert m.get_element(0, 0) == 2.0
        assert m.get_element(0, 2) == 3.0
        assert m.get_element(0, 5) == 0.0

    def test_multiply_matches_manual_product(self):
        m = Matrix()
        m.set_element(0, 0, 1.0)
        m.set_element(0, 1, 2.0)
        m.set_element(1, 1, 3.0)
        result = m.multiply(Vector(values=[10.0, 100.0]))
        assert result.get(0) == 210.0
        assert result.get(1) == 300.0

    def test_multiply_skips_out_of_range_columns(self):
        m = Matrix()
        m.set_element(0, 9, 5.0)
        assert m.multiply(Vector(values=[1.0])).get(0) == 0.0

    def test_invalid_key_rejected(self):
        with pytest.raises(StateError):
            Matrix().set_element(-1, 0, 1.0)

    def test_invalid_axis_rejected(self):
        with pytest.raises(StateError):
            Matrix(partition_axis="diagonal")

    def test_partition_key_follows_axis(self):
        assert Matrix(partition_axis="row").partition_key((3, 9)) == 3
        assert Matrix(partition_axis="col").partition_key((3, 9)) == 9


class TestSparseMatrixCheckpointing:
    def test_get_row_sees_dirty_writes(self):
        m = Matrix()
        m.set_element(0, 0, 1.0)
        m.begin_checkpoint()
        m.set_element(0, 1, 2.0)
        row = m.get_row(0)
        assert row.get(0) == 1.0
        assert row.get(1) == 2.0
        snapshot = dict(m.snapshot_items())
        assert (0, 1) not in snapshot
        m.consolidate()
        assert m.get_element(0, 1) == 2.0

    def test_multiply_sees_dirty_writes(self):
        m = Matrix()
        m.begin_checkpoint()
        m.set_element(0, 0, 4.0)
        assert m.multiply(Vector(values=[2.0])).get(0) == 8.0
        m.consolidate()

    def test_row_index_consistent_after_consolidate(self):
        m = Matrix()
        m.set_element(0, 0, 1.0)
        m.begin_checkpoint()
        m.set_element(0, 1, 2.0)
        m.consolidate()
        row = m.get_row(0)
        assert row.to_list() == [1.0, 2.0]


class TestDenseMatrix:
    def test_shape_is_fixed(self):
        m = DenseMatrix(2, 3)
        assert m.n_rows == 2 and m.n_cols == 3
        with pytest.raises(StateError):
            m.set_element(2, 0, 1.0)
        with pytest.raises(StateError):
            m.get_element(0, 3)

    def test_cells_default_to_zero(self):
        assert DenseMatrix(2, 2).get_element(1, 1) == 0.0

    def test_set_get_roundtrip(self):
        m = DenseMatrix(2, 2)
        m.set_element(0, 1, 5.0)
        assert m.get_element(0, 1) == 5.0

    def test_multiply(self):
        m = DenseMatrix(2, 2)
        m.set_element(0, 0, 1.0)
        m.set_element(0, 1, 2.0)
        m.set_element(1, 0, 3.0)
        result = m.multiply(Vector(values=[1.0, 1.0]))
        assert result.to_list() == [3.0, 3.0]

    def test_get_row(self):
        m = DenseMatrix(1, 3)
        m.set_element(0, 2, 9.0)
        assert m.get_row(0).to_list() == [0.0, 0.0, 9.0]

    def test_negative_dimensions_rejected(self):
        with pytest.raises(StateError):
            DenseMatrix(-1, 2)

    def test_chunk_meta_restores_shape(self):
        m = DenseMatrix(2, 2)
        m.set_element(1, 1, 3.0)
        chunks = m.to_chunks(2)
        restored = DenseMatrix.from_chunks(m, chunks)
        assert restored.get_element(1, 1) == 3.0
        assert restored.n_rows == 2

"""Property-based translation-equivalence and CF-recovery tests.

The translator's contract: for any workload, the distributed execution
of an annotated program computes exactly what the plain sequential
execution computes — including across replica counts, and including
runs interrupted by a failure and recovery.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import CollaborativeFiltering, KeyValueStore
from repro.recovery import BackupStore, CheckpointManager, RecoveryManager

ratings = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 4), st.integers(1, 5)),
    min_size=1, max_size=25,
)


@given(ops=ratings, replicas=st.integers(1, 3),
       query_user=st.integers(0, 6))
@settings(max_examples=25, deadline=None)
def test_cf_distributed_equals_sequential(ops, replicas, query_user):
    sequential = CollaborativeFiltering()
    app = CollaborativeFiltering.launch(user_item=2, co_occ=replicas)
    for user, item, rating in ops:
        sequential.add_rating(user, item, rating)
        app.add_rating(user, item, rating)
    app.run()
    app.get_rec(query_user)
    app.run()
    assert (app.results("get_rec")[0].to_list()
            == sequential.get_rec(query_user).to_list())


kv_ops = st.lists(
    st.tuples(st.sampled_from(["put", "bump", "remove"]),
              st.integers(0, 8), st.integers(0, 50)),
    min_size=1, max_size=30,
)


@given(ops=kv_ops, partitions=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_kv_distributed_equals_sequential(ops, partitions):
    """Each op kind is its own entry TE, and the model guarantees
    ordering only *within* one dataflow stream — so the property drains
    between ops to serialise across entry streams, exactly what a
    client needing cross-operation ordering would do."""
    sequential = KeyValueStore()
    app = KeyValueStore.launch(table=partitions)
    for op, key, value in ops:
        if op == "put":
            sequential.put(key, value)
            app.put(key, value)
        elif op == "bump":
            sequential.bump(key, value)
            app.bump(key, value)
        else:
            sequential.remove(key)
            app.remove(key)
        app.run()
    merged = {}
    for element in app.state_of("table"):
        merged.update(dict(element.items()))
    assert merged == dict(sequential.table.items())


@given(ops=ratings, fail_at=st.integers(0, 25),
       checkpoint_at=st.integers(0, 25))
@settings(max_examples=20, deadline=None)
def test_cf_recovery_transparent_under_random_workloads(
    ops, fail_at, checkpoint_at
):
    checkpoint_at = min(checkpoint_at, len(ops))
    fail_at = min(max(fail_at, checkpoint_at), len(ops))

    sequential = CollaborativeFiltering()
    for user, item, rating in ops:
        sequential.add_rating(user, item, rating)

    app = CollaborativeFiltering.launch(user_item=1, co_occ=2)
    store = BackupStore(m_targets=2)
    manager = CheckpointManager(app.runtime, store)
    recovery = RecoveryManager(app.runtime, store)
    victim = app.runtime.se_instance("user_item", 0).node_id

    for index, (user, item, rating) in enumerate(ops):
        if index == checkpoint_at:
            app.run()
            manager.checkpoint(victim)
        if index == fail_at:
            app.runtime.fail_node(victim)
            recovery.recover_node(victim)
        app.add_rating(user, item, rating)
    if fail_at >= len(ops):
        if checkpoint_at >= len(ops):
            app.run()
            manager.checkpoint(victim)
        app.run()
        app.runtime.fail_node(victim)
        recovery.recover_node(victim)
    app.run()
    app.get_rec(0)
    app.run()
    assert (app.results("get_rec")[0].to_list()
            == sequential.get_rec(0).to_list())

"""Property-based tests over randomly generated SDG topologies.

The generator builds arbitrary (valid-by-construction) SDGs — random
mixes of partitioned/partial SEs, stateful/stateless TEs, and random
extra dataflow edges — and checks the structural invariants that
allocation and execution rely on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SDG,
    AccessMode,
    Dispatch,
    StateKind,
    allocate,
)
from repro.runtime import Runtime, RuntimeConfig
from repro.state import KeyValueMap


def noop(ctx, item):
    return item


@st.composite
def random_sdgs(draw):
    """A random well-formed SDG: a pipeline plus random extra edges."""
    sdg = SDG("random")
    n_states = draw(st.integers(0, 4))
    kinds = []
    for s in range(n_states):
        kind = draw(st.sampled_from([StateKind.PARTITIONED,
                                     StateKind.PARTIAL]))
        kinds.append(kind)
        sdg.add_state(f"se{s}", KeyValueMap, kind=kind)

    n_tasks = draw(st.integers(1, 8))
    names = []
    for t in range(n_tasks):
        use_state = n_states and draw(st.booleans())
        name = f"te{t}"
        if use_state:
            index = draw(st.integers(0, n_states - 1))
            if kinds[index] is StateKind.PARTITIONED:
                access = AccessMode.PARTITIONED
            else:
                access = draw(st.sampled_from([AccessMode.LOCAL,
                                               AccessMode.GLOBAL]))
            sdg.add_task(
                name, noop, state=f"se{index}", access=access,
                is_entry=(t == 0),
                entry_key_fn=(lambda x: x) if t == 0 else None,
                entry_key_name="k" if t == 0 else None,
            )
        else:
            sdg.add_task(name, noop, is_entry=(t == 0))
        names.append(name)

    # A pipeline spine so everything is reachable from the entry.
    for i in range(n_tasks - 1):
        dst = sdg.task(names[i + 1])
        if dst.access is AccessMode.PARTITIONED:
            sdg.connect(names[i], names[i + 1],
                        Dispatch.KEY_PARTITIONED,
                        key_fn=lambda x: x, key_name="k")
        elif dst.access is AccessMode.GLOBAL:
            sdg.connect(names[i], names[i + 1], Dispatch.ONE_TO_ALL)
        else:
            sdg.connect(names[i], names[i + 1], Dispatch.ONE_TO_ANY)
    # Random extra *forward* edges (keeping dispatch legal and the
    # graph acyclic, so the noop pipeline always drains).
    n_extra = draw(st.integers(0, 3)) if n_tasks > 1 else 0
    for _ in range(n_extra):
        src = draw(st.integers(0, n_tasks - 2))
        dst_index = draw(st.integers(src + 1, n_tasks - 1))
        dst = sdg.task(names[dst_index])
        if dst.is_merge:
            continue
        if dst.access is AccessMode.PARTITIONED:
            sdg.connect(names[src], names[dst_index],
                        Dispatch.KEY_PARTITIONED,
                        key_fn=lambda x: x, key_name="k")
        elif dst.access is AccessMode.GLOBAL:
            sdg.connect(names[src], names[dst_index],
                        Dispatch.ONE_TO_ALL)
        else:
            sdg.connect(names[src], names[dst_index],
                        Dispatch.ONE_TO_ANY)
    return sdg


@given(sdg=random_sdgs())
@settings(max_examples=80, deadline=None)
def test_generated_sdgs_validate(sdg):
    sdg.validate()


@given(sdg=random_sdgs())
@settings(max_examples=80, deadline=None)
def test_allocation_invariants(sdg):
    allocation = allocate(sdg)
    # Every element placed exactly once.
    assert sorted(allocation.node_of) == sorted(
        list(sdg.tasks) + list(sdg.states)
    )
    # TEs are colocated with the SE they access (no remote state).
    for te in sdg.tasks.values():
        if te.state is not None:
            assert allocation.colocated(te.name, te.state)
    # SEs inside one dataflow cycle share a node (step 1).
    for cycle in sdg.cycles():
        cycle_states = {
            sdg.task(te).state for te in cycle
            if sdg.task(te).state is not None
        }
        cycle_states.discard(None)
        nodes = {allocation.node_of[s] for s in cycle_states}
        assert len(nodes) <= 1
    # The inverse mapping is consistent.
    for element, node in allocation.node_of.items():
        assert element in allocation.nodes[node]


@given(sdg=random_sdgs(), items=st.integers(1, 20))
@settings(max_examples=40, deadline=None)
def test_generated_sdgs_execute_to_idle(sdg, items):
    """Any generated (acyclic-spine) SDG deploys and drains."""
    runtime = Runtime(sdg, RuntimeConfig()).deploy()
    entry = sdg.entries()[0].name
    for i in range(items):
        runtime.inject(entry, i)
    runtime.run_until_idle(max_steps=200_000)
    assert runtime.is_idle()

"""Tests for the streaming windowed wordcount application (§6.1)."""

from collections import Counter

import pytest

from repro.apps import build_wordcount_sdg
from repro.runtime import Runtime, RuntimeConfig


def deploy(window_size=100, partitions=4):
    runtime = Runtime(
        build_wordcount_sdg(window_size=window_size),
        RuntimeConfig(se_instances={"counts": partitions}),
    )
    return runtime.deploy()


LINES = [
    (0, "the quick brown fox"),
    (10, "the lazy dog"),
    (120, "the fox again"),
    (130, "fox fox fox"),
]


def reference_counts(lines, window_size):
    counts = Counter()
    for timestamp, line in lines:
        for word in line.split():
            counts[(timestamp // window_size, word)] += 1
    return counts


class TestWordCount:
    def test_counts_match_reference(self):
        runtime = deploy(window_size=100)
        for item in LINES:
            runtime.inject("split", item)
        runtime.run_until_idle()
        expected = reference_counts(LINES, 100)
        merged = {}
        for inst in runtime.se_instances("counts"):
            merged.update(dict(inst.element.items()))
        assert merged == dict(expected)

    def test_windows_separate_counts(self):
        runtime = deploy(window_size=100)
        for item in LINES:
            runtime.inject("split", item)
        runtime.run_until_idle()
        runtime.inject("query", (0, "the"))
        runtime.inject("query", (1, "the"))
        runtime.inject("query", (1, "fox"))
        runtime.run_until_idle()
        assert sorted(runtime.results["query"]) == [
            (0, "the", 2), (1, "fox", 4), (1, "the", 1),
        ]

    def test_missing_word_counts_zero(self):
        runtime = deploy()
        runtime.inject("query", (0, "nothing"))
        runtime.run_until_idle()
        assert runtime.results["query"] == [(0, "nothing", 0)]

    def test_smaller_windows_make_finer_updates(self):
        fine = deploy(window_size=10)
        for item in LINES:
            fine.inject("split", item)
        fine.run_until_idle()
        merged = {}
        for inst in fine.se_instances("counts"):
            merged.update(dict(inst.element.items()))
        # With 10-unit windows, each line lands in its own window.
        assert merged == dict(reference_counts(LINES, 10))
        windows = {window for (window, _word) in merged}
        assert len(windows) == 4

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            build_wordcount_sdg(window_size=0)

    def test_words_partitioned_consistently(self):
        runtime = deploy(partitions=3)
        for item in LINES:
            runtime.inject("split", item)
        runtime.run_until_idle()
        partitioner = runtime._partitioners["counts"]
        for inst in runtime.se_instances("counts"):
            for key in inst.element.keys():
                assert partitioner.partition(key[1]) == inst.index

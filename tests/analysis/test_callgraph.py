"""Corner cases of the intra-class call graph and the summary fixpoint.

The graph layer must terminate and stay conservative on exactly the
shapes that break naive interprocedural analyses: direct and mutual
recursion (SCC fixpoint), staticmethod dispatch through
``self.__class__`` / the class name, and unknown callees (opaque
degradation that can only *add* findings, never remove them).
"""

import ast
import textwrap

from repro.analysis.callgraph import build_callgraph, local_bindings
from repro.analysis.summaries import (
    ALL_PARAMS,
    OPAQUE_SUMMARY,
    compute_summaries,
)

from tests.analysis.fixtures import free_function_nondet, helper_nondet


def graph_from(source: str, class_name: str = "Demo"):
    """A call graph over a literal class body (no module functions)."""
    tree = ast.parse(textwrap.dedent(source))
    class_def = tree.body[0]
    method_asts = {
        node.name: node
        for node in class_def.body
        if isinstance(node, ast.FunctionDef)
    }

    class _Stub:  # no module counterpart: exercises the class alone
        pass

    _Stub.__name__ = class_name
    _Stub.__module__ = "tests.analysis._no_such_module"
    return build_callgraph(_Stub, method_asts)


class TestRecursion:
    def test_direct_recursion_is_one_scc_and_converges(self):
        graph = graph_from("""
            class Demo:
                def _walk(self, n):
                    import random
                    noise = random.random()
                    if n:
                        return self._walk(n - 1) + noise
                    return noise
        """)
        assert ["_walk"] in graph.sccs()
        summaries = compute_summaries(graph)  # must terminate
        effects = summaries.get("_walk").effects
        # The nondet site appears exactly once despite the cycle.
        assert len([e for e in effects if e.kind == "nondet"]) == 1

    def test_mutual_recursion_iterates_the_component_together(self):
        graph = graph_from("""
            class Demo:
                def _even(self, n):
                    return True if n == 0 else self._odd(n - 1)

                def _odd(self, n):
                    import random
                    if random.random() < 0:
                        return False
                    return False if n == 0 else self._even(n - 1)
        """)
        components = graph.sccs()
        assert ["_even", "_odd"] in components
        summaries = compute_summaries(graph)
        # The effect inside _odd reaches both members of the cycle,
        # once each.
        for name in ("_even", "_odd"):
            nondet = [e for e in summaries.get(name).effects
                      if e.kind == "nondet"]
            assert len(nondet) == 1, name
        # _even reaches it through _odd; the chain records the hop.
        [through] = [e for e in summaries.get("_even").effects
                     if e.kind == "nondet"]
        assert [hop.fn for hop in through.chain] == ["_odd"]


class TestStaticmethodDispatch:
    SOURCE = """
        class Demo:
            @staticmethod
            def norm(x):
                return abs(x)

            def via_self(self, x):
                return self.norm(x)

            def via_dunder_class(self, x):
                return self.__class__.norm(x)

            def via_class_name(self, x):
                return Demo.norm(x)
    """

    def test_all_three_spellings_resolve(self):
        graph = graph_from(self.SOURCE)
        assert graph.nodes["norm"].kind == "staticmethod"
        for caller in ("via_self", "via_dunder_class", "via_class_name"):
            [site] = graph.callees(caller)
            assert site.callee == "norm", caller

    def test_staticmethod_params_have_no_self(self):
        graph = graph_from(self.SOURCE)
        assert graph.nodes["norm"].params == ["x"]


class TestOpaqueDegradation:
    def test_unknown_callee_lands_on_the_opaque_frontier(self):
        graph = graph_from("""
            class Demo:
                def entry(self, x):
                    return mystery(x)
        """)
        assert graph.callees("entry") == []
        assert "mystery" in graph.opaque["entry"]

    def test_opaque_summary_taints_return_from_every_param(self):
        graph = graph_from("""
            class Demo:
                def entry(self, x):
                    return mystery(x)
        """)
        summaries = compute_summaries(graph)
        summary = summaries.get("mystery")
        assert summary is OPAQUE_SUMMARY
        assert summary.opaque
        assert summary.taints_return == ALL_PARAMS
        assert not summary.effects
        assert not summary.mutated_params

    def test_locally_bound_name_blocks_resolution(self):
        graph = graph_from("""
            class Demo:
                def _noise(self):
                    return 4

                def entry(self, _noise):
                    return _noise()
        """)
        # The parameter shadows the helper: the call goes through a
        # local value, so it must not resolve to the method.
        assert graph.callees("entry") == []


class TestRealPrograms:
    def test_free_function_is_a_graph_node(self):
        from repro.analysis.model import ProgramModel
        from repro.translate import translate

        cls = free_function_nondet.FreeFunctionNoise
        model = ProgramModel.build(cls, translate(cls))
        graph = model.interproc.graph
        assert graph.nodes["noise"].kind == "function"
        [site] = graph.callees("put_noisy")
        assert site.callee == "noise"

    def test_helper_method_edge_from_entry(self):
        from repro.analysis import DiagnosticSink
        from repro.analysis.model import ProgramModel
        from repro.translate import translate

        cls = helper_nondet.JitteredStore
        result = translate(cls, sink=DiagnosticSink())  # lint mode
        model = ProgramModel.build(cls, result)
        [site] = model.interproc.graph.callees("put_jittered")
        assert site.callee == "_jitter"


class TestLocalBindings:
    def test_collects_every_binding_form(self):
        fn = ast.parse(textwrap.dedent("""
            def f(a, *rest, b=1, **kw):
                c = 1
                for d in rest:
                    pass
                with open("x") as e:
                    pass
                try:
                    pass
                except ValueError as err:
                    pass
                def g():
                    pass
        """)).body[0]
        bound = local_bindings(fn)
        assert {"a", "rest", "b", "kw", "c", "d", "e", "err",
                "g"} <= bound
        assert "self" not in bound

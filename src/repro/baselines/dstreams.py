"""Streaming Spark (D-Streams) mechanism model (Fig. 8).

D-Streams discretise a stream into micro-batches, one per result
window: the batch size is *coupled* to the window size, so small
windows cannot amortise the scheduling overhead — the paper measures a
collapse below a 250 ms window. Peak throughput at large windows rivals
the pipelined SDG because the per-item cost is comparable once
scheduling is amortised.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.batching import microbatch_throughput, sustainable


@dataclass(frozen=True)
class StreamingSparkModel:
    """A Streaming Spark deployment configuration."""

    service_rate: float = 95_000.0
    #: Per-micro-batch scheduling delay; the paper's observed minimum
    #: sustainable window (250 ms) pins this constant.
    scheduling_overhead_s: float = 0.175

    def batch_size_for_window(self, window_s: float,
                              input_rate: float) -> float:
        """D-Streams processes one window's arrivals per batch."""
        return max(1.0, window_s * input_rate)

    def wordcount_throughput(self, window_s: float) -> float:
        """Sustainable throughput at a window size (0.0 = collapse).

        The batch must finish (processing + scheduling) within its own
        window. The largest input rate satisfying that is the
        sustainable throughput; if even the scheduling overhead exceeds
        the window, no rate is sustainable.
        """
        if window_s <= self.scheduling_overhead_s:
            return 0.0
        # rate*window/service_rate + overhead <= window
        # => rate <= service_rate * (window - overhead) / window
        rate = self.service_rate * (
            (window_s - self.scheduling_overhead_s) / window_s
        )
        batch = self.batch_size_for_window(window_s, rate)
        if not sustainable(window_s, batch, self.service_rate,
                           self.scheduling_overhead_s):
            return 0.0
        return rate

    def peak_throughput(self, window_s: float = 10.0) -> float:
        """Throughput with a comfortably large window."""
        batch = self.batch_size_for_window(
            window_s, self.service_rate
        )
        return microbatch_throughput(self.service_rate, batch,
                                     self.scheduling_overhead_s)

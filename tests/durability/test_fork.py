"""Tests for forking a durable run at a committed epoch."""

import os

import pytest

from repro.durability import (
    BACKUPS_DIR,
    DurableRunner,
    RunSpec,
    fork_run,
    load_manifest,
)
from repro.errors import DurabilityError

# full_every=0 keeps every epoch's delta on the single chain, so the
# fork's fenced versions are all still on disk.
SPEC = RunSpec(app="kvstore", seed=7, epochs=5, items_per_epoch=40,
               full_every=0)


def run_parent(tmp_path):
    parent_dir = str(tmp_path / "parent")
    runner = DurableRunner.start(parent_dir, SPEC)
    runner.run()
    return parent_dir, runner


def chunk_files(run_dir):
    backups = os.path.join(run_dir, BACKUPS_DIR)
    return sorted(
        os.path.join(root, name)
        for root, _dirs, names in os.walk(backups)
        for name in names if name.endswith(".pkl")
    )


class TestFork:
    def test_fork_shares_checkpoints_by_hardlink(self, tmp_path):
        parent_dir, _runner = run_parent(tmp_path)
        child_dir = str(tmp_path / "child")
        child = fork_run(parent_dir, child_dir, 3)
        assert child.committed_epoch == 3
        assert child.run_id.endswith("~fork3")
        files = chunk_files(child_dir)
        assert files
        # Checked before any child resume (which re-anchors): the fork
        # itself copied no checkpoint payloads, it linked them.
        assert all(os.stat(f).st_nlink >= 2 for f in files)
        # Nothing beyond the fenced epoch-3 versions came along.
        fence = load_manifest(parent_dir).record_for(3).checkpoints
        for path in files:
            name = os.path.basename(path)
            node_part, version_part, _ = name.split("_", 2)
            node = int(node_part[len("node"):])
            version = int(version_part[len("v"):])
            assert version <= fence[node]

    def test_fork_truncates_event_log(self, tmp_path):
        parent_dir, _runner = run_parent(tmp_path)
        child_dir = str(tmp_path / "child")
        fork_run(parent_dir, child_dir, 2)
        fenced = load_manifest(parent_dir).record_for(2).events_offset
        child_events = os.path.join(child_dir, "events.jsonl")
        assert os.path.getsize(child_events) == fenced
        with open(child_events, "rb") as fh:
            data = fh.read()
        assert data.endswith(b"\n")  # cut on a record boundary

    def test_child_resumes_to_parent_epoch_hash(self, tmp_path):
        parent_dir, _runner = run_parent(tmp_path)
        child_dir = str(tmp_path / "child")
        fork_run(parent_dir, child_dir, 3)
        resumed = DurableRunner.resume(child_dir)
        assert resumed.resume_mode == "checkpoint"
        parent_record = load_manifest(parent_dir).record_for(3)
        assert resumed.state_hash() == parent_record.state_hash

    def test_child_continues_to_parent_final_hash(self, tmp_path):
        parent_dir, parent = run_parent(tmp_path)
        child_dir = str(tmp_path / "child")
        fork_run(parent_dir, child_dir, 3)
        resumed = DurableRunner.resume(child_dir)
        resumed.run()
        assert resumed.state_hash() == parent.state_hash()

    def test_fork_at_uncommitted_epoch_refused(self, tmp_path):
        parent_dir, _runner = run_parent(tmp_path)
        with pytest.raises(DurabilityError):
            fork_run(parent_dir, str(tmp_path / "child"), 9)

    def test_fork_onto_existing_run_refused(self, tmp_path):
        parent_dir, _runner = run_parent(tmp_path)
        child_dir = str(tmp_path / "child")
        fork_run(parent_dir, child_dir, 2)
        with pytest.raises(DurabilityError):
            fork_run(parent_dir, child_dir, 3)

    def test_child_diverges_without_touching_parent(self, tmp_path):
        parent_dir, parent = run_parent(tmp_path)
        parent_hash = parent.state_hash()
        child_dir = str(tmp_path / "child")
        fork_run(parent_dir, child_dir, 3)
        resumed = DurableRunner.resume(child_dir)
        resumed.run()
        # The parent's manifest is untouched by everything the child did.
        assert load_manifest(parent_dir).committed_epoch == 5
        assert parent.state_hash() == parent_hash

"""Tests for global access: broadcast, gather barriers and NO_RESPONSE."""

import pytest

from repro.core import SDG, AccessMode, Dispatch, StateKind
from repro.errors import RuntimeExecutionError
from repro.runtime import Runtime, RuntimeConfig
from repro.state import KeyValueMap


def build_global_sdg(responder):
    """source --one_to_all--> reader(partial SE) --all_to_one--> merge."""
    sdg = SDG("global")
    sdg.add_state("replica", KeyValueMap, kind=StateKind.PARTIAL)
    sdg.add_task("source", lambda ctx, item: item, is_entry=True)
    sdg.add_task("reader", responder, state="replica",
                 access=AccessMode.GLOBAL)
    sdg.add_task("merge", lambda ctx, parts: sorted(parts), is_merge=True)
    sdg.connect("source", "reader", Dispatch.ONE_TO_ALL)
    sdg.connect("reader", "merge", Dispatch.ALL_TO_ONE)
    return sdg


class TestBroadcastGather:
    def test_gather_collects_one_response_per_instance(self):
        def responder(ctx, item):
            return f"instance{ctx.instance_id}"

        runtime = Runtime(build_global_sdg(responder),
                          RuntimeConfig(se_instances={"replica": 3}))
        runtime.deploy()
        runtime.inject("source", "ping")
        runtime.run_until_idle()
        assert runtime.results["merge"] == [
            ["instance0", "instance1", "instance2"]
        ]

    def test_no_response_instances_are_skipped(self):
        def responder(ctx, item):
            # Only even instances answer; the barrier must still complete.
            if ctx.instance_id % 2 == 0:
                return ctx.instance_id
            return None

        runtime = Runtime(build_global_sdg(responder),
                          RuntimeConfig(se_instances={"replica": 4}))
        runtime.deploy()
        runtime.inject("source", "ping")
        runtime.run_until_idle()
        assert runtime.results["merge"] == [[0, 2]]

    def test_all_silent_instances_yield_empty_merge_input(self):
        def responder(ctx, item):
            return None

        runtime = Runtime(build_global_sdg(responder),
                          RuntimeConfig(se_instances={"replica": 2}))
        runtime.deploy()
        runtime.inject("source", "ping")
        runtime.run_until_idle()
        assert runtime.results["merge"] == [[]]

    def test_concurrent_requests_do_not_mix(self):
        def responder(ctx, item):
            return (item, ctx.instance_id)

        runtime = Runtime(build_global_sdg(responder),
                          RuntimeConfig(se_instances={"replica": 2}))
        runtime.deploy()
        for req in range(5):
            runtime.inject("source", req)
        runtime.run_until_idle()
        merged = runtime.results["merge"]
        assert len(merged) == 5
        for parts in merged:
            reqs = {r for r, _ in parts}
            assert len(reqs) == 1  # each barrier saw a single request
            assert {i for _, i in parts} == {0, 1}

    def test_multi_output_on_gather_edge_rejected(self):
        def responder(ctx, item):
            ctx.emit(1)
            ctx.emit(2)

        runtime = Runtime(build_global_sdg(responder),
                          RuntimeConfig(se_instances={"replica": 2}))
        runtime.deploy()
        runtime.inject("source", "ping")
        with pytest.raises(RuntimeExecutionError, match="at most one"):
            runtime.run_until_idle()


class TestEntryGlobalAccess:
    def test_entry_with_global_access_broadcasts(self):
        sdg = SDG("entry_global")
        sdg.add_state("replica", KeyValueMap, kind=StateKind.PARTIAL)

        def reader(ctx, item):
            return ctx.instance_id

        sdg.add_task("reader", reader, state="replica",
                     access=AccessMode.GLOBAL, is_entry=True)
        sdg.add_task("merge", lambda ctx, parts: sorted(parts),
                     is_merge=True)
        sdg.connect("reader", "merge", Dispatch.ALL_TO_ONE)
        runtime = Runtime(sdg, RuntimeConfig(se_instances={"replica": 3}))
        runtime.deploy()
        runtime.inject("reader", "q")
        runtime.run_until_idle()
        assert runtime.results["merge"] == [[0, 1, 2]]


class TestLocalAccessLoadBalancing:
    def test_one_to_any_round_robins_over_replicas(self):
        sdg = SDG("lb")
        sdg.add_state("replica", KeyValueMap, kind=StateKind.PARTIAL)
        sdg.add_task("source", lambda ctx, item: item, is_entry=True)

        def writer(ctx, item):
            ctx.state.increment("count")
            return None

        sdg.add_task("writer", writer, state="replica",
                     access=AccessMode.LOCAL)
        sdg.connect("source", "writer", Dispatch.ONE_TO_ANY)
        runtime = Runtime(sdg, RuntimeConfig(se_instances={"replica": 4}))
        runtime.deploy()
        for i in range(40):
            runtime.inject("source", i)
        runtime.run_until_idle()
        counts = [inst.element.get("count", 0)
                  for inst in runtime.se_instances("replica")]
        assert counts == [10, 10, 10, 10]

"""Streaming windowed wordcount with the low-level SDG API.

Not every dataflow fits the annotated-class model — the wordcount
splitter fans one line out into many word items. The low-level API
(``SDG`` + ``ctx.emit``) expresses it directly, with keyed dispatch
routing each word to the partition that owns its counter.

Run with:

    python examples/streaming_wordcount.py
"""

from repro.apps import build_wordcount_sdg
from repro.runtime import Runtime, RuntimeConfig
from repro.workloads import TextWorkload


def main():
    window = 100  # logical-time units per window
    runtime = Runtime(
        build_wordcount_sdg(window_size=window),
        RuntimeConfig(se_instances={"counts": 4}),
    ).deploy()
    print(f"deployed wordcount on {len(runtime.nodes)} nodes "
          f"(4 count partitions), window={window}\n")

    workload = TextWorkload(vocabulary=200, words_per_line=6,
                            inter_arrival=5, seed=3)
    for item in workload.lines(200):
        runtime.inject("split", item)
    runtime.run_until_idle()

    # Per-partition state (fine-grained counters, partitioned by word).
    for inst in runtime.se_instances("counts"):
        print(f"partition {inst.index}: {len(inst.element)} counters")

    # Query the hottest words in the first two windows.
    for window_id in (0, 1):
        for rank in range(3):
            runtime.inject("query", (window_id, f"w{rank}"))
    runtime.run_until_idle()
    print("\nhot-word counts per window:")
    for window_id, word, count in sorted(runtime.results["query"]):
        print(f"  window {window_id}: {word} -> {count}")


if __name__ == "__main__":
    main()
